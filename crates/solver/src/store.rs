//! Pluggable query stores: where decided solver answers live between queries
//! — and, for the disk-backed store, between *processes*.
//!
//! The [`QueryStore`] trait abstracts the destination of memoized query
//! results. [`BvSolver`](crate::solver::BvSolver) only ever talks to the
//! trait: on every query it looks the canonical fingerprint key up, and on
//! every decided (never `Unknown`) miss it inserts the result back. Two
//! implementations exist:
//!
//! * [`QueryCache`] — the sharded in-memory table of `cache.rs`, shared
//!   across the parallel checker's worker threads. Dies with the process.
//! * [`DiskQueryStore`] — an in-memory table bracketed by [`open`] and
//!   [`save`]: `open` loads every persisted fingerprint→result pair,
//!   `save` writes the table back (atomically, via a temp file + rename),
//!   so the next process — the next package of an archive scan, or the next
//!   scan of the same archive entirely — starts warm. This is the §6.5
//!   deployment mode: the paper's Debian-scale runs re-analyze thousands of
//!   packages that instantiate the same unstable idioms, and a cross-run
//!   store turns all but the first instance into a lookup.
//!
//! ## Persistence format
//!
//! The store file is line-oriented text. The first line is a header naming
//! the format version, the encoding revision, and the **generation** the
//! file was saved at:
//!
//! ```text
//! stack-query-store v4 enc1 gen7
//! U g<gen> <fp>,<fp>,... !<crc32>
//! S g<gen> <fp>,<fp>,... !<crc32>
//! ```
//!
//! `U`/`S` lines carry one UNSAT/SAT entry: a last-used generation stamp
//! and the canonical cache key (sorted 128-bit structural fingerprints,
//! lower-case hex), terminated by a ` !`-prefixed CRC-32 of the payload
//! (v4). Entries are written sorted by key, so saving the same logical
//! store at the same generation always produces byte-identical files.
//!
//! ## Crash safety and salvage
//!
//! Saves are atomic (temp file + same-directory rename), so an interrupted
//! save never replaces a good store. But the file can still arrive torn —
//! a crashed copy, a truncated disk, a bit flip in transit — and a cache
//! must never serve a wrong answer because of it. The per-line checksum is
//! what makes the failure model per-entry instead of per-file: at `open`,
//! a body line whose checksum or syntax does not verify is **dropped and
//! counted** (see [`SalvageReport`]) while every intact line loads
//! normally, and a later `save` rewrites the file canonically. Duplicate
//! keys (the signature of a torn write that spliced two file versions)
//! keep the first occurrence; an unterminated final line is treated as
//! truncation debris. Only a header mismatch — wrong format or encoding
//! revision, i.e. a file whose *semantics* cannot be trusted — still
//! discards the store wholesale ([`DiskQueryStore::was_invalidated`]).
//! [`merge`] stays strict: a store that needed salvage is refused, never
//! silently folded into a fleet-shared artifact. `stack store fsck
//! [--repair]` drives the same salvage path from the command line.
//!
//! SAT entries persist the decided **fact**, never the witness model. The
//! fact is canonical — structurally identical queries decide identically —
//! but a witness is whatever assignment the search happened to land on: in
//! incremental mode it is extracted from a per-function instance whose
//! variables and phases depend on every query that instance answered
//! before, so two runs (or two shards of a distributed scan) legitimately
//! find different witnesses for the same key. A persisted witness would
//! make store bytes history-dependent, and [`merge`] — which insists that
//! duplicate keys carry byte-identical values — would reject honest shard
//! stores. Witnesses therefore stay process-local (the in-memory
//! [`QueryCache`] keeps them); a warm `Sat` hit from disk carries an empty
//! model, which no checker algorithm inspects.
//!
//! ## Generations and compaction
//!
//! Every `open` starts a new generation (the persisted `gen` plus one);
//! every entry the run touches — a lookup hit or a fresh insert — is
//! stamped with it, and `save` writes the stamps back. The stamp is how an
//! otherwise monotonically growing archive-scale store ages out dead
//! weight: with [`set_compaction`](DiskQueryStore::set_compaction)`(Some(n))`
//! (the CLI's `--compact-store n`), `save` drops every entry whose last use
//! is `n` or more generations old. Entries used this run are never dropped.
//!
//! A header that does not match the running binary's
//! [`STORE_FORMAT_VERSION`]/[`ENCODING_REVISION`] causes the whole file to
//! be discarded and the store to start empty
//! ([`DiskQueryStore::was_invalidated`] reports it). Fingerprints bake in
//! the term encoding, so a stale cache produced by an older encoder or
//! solver must self-invalidate rather than serve wrong answers. `Unknown`
//! results are never inserted (a budget exhaustion is a property of the
//! budget, not the formula), so they are never persisted either.
//!
//! [`open`]: DiskQueryStore::open
//! [`save`]: DiskQueryStore::save
//! [`merge`]: DiskQueryStore::merge

use crate::cache::{shard_index, CacheKey, CacheStats, QueryCache, STAMP_SHARDS};
use crate::model::Model;
use crate::solver::QueryResult;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk layout version of the store file. Bump when the file syntax
/// changes. (v2 added the header generation and per-entry last-used
/// stamps; v3 dropped witness models from `S` lines — witnesses are
/// search-history-dependent, and a mergeable artifact must not be; v4
/// added the per-line ` !<crc32>` checksum that makes torn or truncated
/// stores salvageable line by line. Older files self-invalidate, as any
/// stale cache does.)
pub const STORE_FORMAT_VERSION: u32 = 4;

/// Revision of everything a fingerprint's meaning depends on: the term
/// encoding, the structural fingerprint function, and the solver's decided
/// semantics. Bump whenever any of those change observably — persisted
/// entries from a different revision are discarded at `open`, so stale
/// caches self-invalidate instead of serving answers computed under
/// different semantics.
pub const ENCODING_REVISION: u32 = 1;

/// Destination of memoized query results.
///
/// `lookup` returns a previously decided result for a canonical key (and
/// counts a hit or miss); `insert` stores a decided result (`Unknown` must
/// be ignored). Implementations are shared across worker threads through an
/// `Arc`, so both methods take `&self`.
pub trait QueryStore: Send + Sync + std::fmt::Debug {
    /// Look up a decided result for `key`, updating hit/miss counters.
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult>;

    /// Store a decided result. `Unknown` is silently ignored.
    fn insert(&self, key: CacheKey, result: &QueryResult);

    /// Counters accumulated so far.
    fn stats(&self) -> CacheStats;
}

impl QueryStore for QueryCache {
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult> {
        QueryCache::lookup(self, key)
    }

    fn insert(&self, key: CacheKey, result: &QueryResult) {
        QueryCache::insert(self, key, result);
    }

    fn stats(&self) -> CacheStats {
        QueryCache::stats(self)
    }
}

/// A disk-backed query store: the in-memory sharded table plus load/save
/// against one file. See the module docs for the format and invalidation
/// rules.
#[derive(Debug)]
pub struct DiskQueryStore {
    path: PathBuf,
    mem: QueryCache,
    /// This run's generation: the persisted header generation plus one.
    generation: u64,
    /// Last-used generation per key (loaded stamps, overwritten with
    /// `generation` on every hit or insert this run). Sharded with the
    /// cache's own shard function so the stamp refresh on the parallel
    /// hot path contends exactly like the cache itself, never globally.
    last_used: [Mutex<HashMap<CacheKey, u64>>; STAMP_SHARDS],
    /// Compaction horizon: entries unused for this many generations are
    /// dropped at `save`. 0 means compaction is off.
    compact_after: AtomicU64,
    loaded: u64,
    invalidated: bool,
    /// Set when `open` had to drop bad lines from a torn or corrupted
    /// body (`None` for a clean or missing file).
    salvage: Option<SalvageReport>,
}

impl DiskQueryStore {
    /// The header line a store saved at `generation` carries.
    fn header(generation: u64) -> String {
        format!("stack-query-store v{STORE_FORMAT_VERSION} enc{ENCODING_REVISION} gen{generation}")
    }

    /// Open a store backed by `path`, loading every persisted entry and
    /// starting the next generation. A missing file yields an empty store
    /// at generation 1; a file with a mismatched header (older format or
    /// encoding revision) is discarded wholesale and
    /// [`was_invalidated`](Self::was_invalidated) reports it. A compatible
    /// file with torn or corrupted body lines loads every line that
    /// checksums and parses, drops the rest, and reports the damage
    /// through [`salvage`](Self::salvage). Only I/O failures are errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<DiskQueryStore> {
        let path = path.into();
        let mut store = DiskQueryStore {
            path,
            mem: QueryCache::new(),
            generation: 1,
            last_used: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            compact_after: AtomicU64::new(0),
            loaded: 0,
            invalidated: false,
            salvage: None,
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        match parse_store(&text) {
            Some((file_generation, entries, salvage)) => {
                store.generation = file_generation + 1;
                store.loaded = entries.len() as u64;
                for (key, result, stamp) in entries {
                    store.last_used[shard_index(&key)]
                        .get_mut()
                        .unwrap()
                        .insert(key.clone(), stamp);
                    store.mem.insert(key, &result);
                }
                if !salvage.is_clean() {
                    store.salvage = Some(salvage);
                }
            }
            None => store.invalidated = true,
        }
        Ok(store)
    }

    /// Write every entry back to the backing file: serialize to a sibling
    /// temp file, then rename over the target, so a crash mid-save never
    /// leaves a truncated store behind. With a compaction horizon set
    /// ([`set_compaction`](Self::set_compaction)), entries unused for that
    /// many generations are dropped. Returns the number of entries
    /// written. Output is deterministic (entries sorted by key, this run's
    /// generation in the header), so saving the same logical store twice
    /// within one run produces byte-identical files.
    pub fn save(&self) -> io::Result<usize> {
        let compact_after = self.compact_after.load(Ordering::Relaxed);
        let mut entries: Vec<(CacheKey, QueryResult, u64)> = self
            .mem
            .entries_snapshot()
            .into_iter()
            .map(|(key, result)| {
                // Entries inserted through the QueryStore interface are
                // always stamped; `loaded` default covers direct test
                // populations of the inner cache.
                let stamp = self.last_used[shard_index(&key)]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get(&key)
                    .copied()
                    .unwrap_or(self.generation);
                (key, result, stamp)
            })
            .filter(|(_, _, stamp)| compact_after == 0 || self.generation - stamp < compact_after)
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        write_store_file(&self.path, self.generation, &entries)?;
        Ok(entries.len())
    }

    /// Merge the stores at `inputs` into one store file at `out`: the
    /// sorted union of their entries, saved through the same atomic
    /// byte-deterministic path [`save`](Self::save) uses. Merging is how a
    /// sharded archive scan's warm state folds back into one fleet-shared
    /// cache, so it is strict where `open` is forgiving:
    ///
    /// * an input whose header names a different format or encoding
    ///   revision — or that is malformed — is a **user-facing error**
    ///   ([`MergeError::Incompatible`]), never a silent discard;
    /// * a key present in several inputs must carry byte-identical results
    ///   (fingerprints are canonical, so two honest stores can only agree);
    ///   a disagreement is a loud [`MergeError::Conflict`];
    /// * last-used generation stamps take the **max** across inputs, and
    ///   the output header carries the max input generation, so relative
    ///   entry ages survive the merge;
    /// * with `compact_after = Some(n)`, entries unused for `n` or more
    ///   generations (relative to the output generation) are pruned, like
    ///   [`set_compaction`](Self::set_compaction) at save.
    ///
    /// Merging a store with itself reproduces it byte for byte, and the
    /// result is independent of input order.
    pub fn merge(
        out: impl AsRef<Path>,
        inputs: &[PathBuf],
        compact_after: Option<u64>,
    ) -> Result<MergeStats, MergeError> {
        let mut merged: HashMap<CacheKey, (QueryResult, u64)> = HashMap::new();
        let mut stats = MergeStats {
            inputs: inputs.len(),
            ..MergeStats::default()
        };
        for path in inputs {
            let text = std::fs::read_to_string(path).map_err(|error| MergeError::Io {
                path: path.clone(),
                error,
            })?;
            check_header_compatible(
                text.lines().next().unwrap_or(""),
                QUERY_STORE_HEADER_PREFIX,
                &[
                    ("v", u64::from(STORE_FORMAT_VERSION)),
                    ("enc", u64::from(ENCODING_REVISION)),
                ],
            )
            .map_err(|reason| MergeError::Incompatible {
                path: path.clone(),
                reason,
            })?;
            let (file_generation, entries, salvage) =
                parse_store(&text).ok_or_else(|| MergeError::Incompatible {
                    path: path.clone(),
                    reason: "malformed store content".to_string(),
                })?;
            // A store that needed salvage may have lost entries; folding
            // it into a fleet-shared artifact would bake the loss in.
            // Re-save it (`stack store fsck --repair`) first.
            if !salvage.is_clean() {
                return Err(MergeError::Incompatible {
                    path: path.clone(),
                    reason: format!(
                        "store needs salvage ({} bad line{}); run fsck --repair before merging",
                        salvage.dropped_lines,
                        if salvage.dropped_lines == 1 { "" } else { "s" }
                    ),
                });
            }
            stats.generation = stats.generation.max(file_generation);
            stats.entries_in += entries.len() as u64;
            for (key, result, stamp) in entries {
                match merged.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut occupied) => {
                        stats.duplicates += 1;
                        if occupied.get().0 != result {
                            return Err(MergeError::Conflict {
                                path: path.clone(),
                                key: key_text(occupied.key()),
                            });
                        }
                        let slot = occupied.get_mut();
                        slot.1 = slot.1.max(stamp);
                    }
                    std::collections::hash_map::Entry::Vacant(vacant) => {
                        vacant.insert((result, stamp));
                    }
                }
            }
        }
        let compact = compact_after.unwrap_or(0);
        let generation = stats.generation.max(1);
        stats.generation = generation;
        let mut entries: Vec<(CacheKey, QueryResult, u64)> = merged
            .into_iter()
            .filter(|(_, (_, stamp))| compact == 0 || generation - stamp < compact)
            .map(|(key, (result, stamp))| (key, result, stamp))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        stats.entries_out = entries.len() as u64;
        stats.pruned = stats.entries_in - stats.duplicates - stats.entries_out;
        write_store_file(out.as_ref(), generation, &entries).map_err(|error| MergeError::Io {
            path: out.as_ref().to_path_buf(),
            error,
        })?;
        Ok(stats)
    }

    /// Read the store file at `path` for debugging: header revisions,
    /// generation, entry count, and a last-used-stamp histogram — without
    /// the all-or-nothing discard [`open`](Self::open) applies, so a store
    /// a merge rejected can still be examined. Only the header must parse;
    /// a body in an unknown line format reports `malformed` instead of
    /// failing.
    pub fn inspect(path: impl AsRef<Path>) -> Result<StoreInspection, MergeError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| MergeError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        inspect_text(
            &text,
            "query",
            QUERY_STORE_HEADER_PREFIX,
            &[
                ("v", u64::from(STORE_FORMAT_VERSION)),
                ("enc", u64::from(ENCODING_REVISION)),
            ],
            |text, generation| {
                let body_start = text.lines().next().map_or(0, |l| l.len() + 1);
                let (entries, salvage) = parse_body(text, body_start, generation);
                (
                    entries.into_iter().map(|(_, _, stamp)| stamp).collect(),
                    salvage,
                )
            },
        )
        .ok_or_else(|| MergeError::Incompatible {
            path: path.to_path_buf(),
            reason: format!("not a {QUERY_STORE_HEADER_PREFIX} file"),
        })
    }

    /// Number of entries loaded from disk at [`open`](Self::open) time.
    pub fn loaded_entries(&self) -> u64 {
        self.loaded
    }

    /// This run's generation: the persisted one plus one (1 for a fresh
    /// store). Every save stamps the header — and every entry this run
    /// touched — with it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Set (or clear) the compaction horizon: at [`save`](Self::save),
    /// entries whose last-used stamp is `n` or more generations old are
    /// pruned. `None` (the default) keeps everything forever.
    pub fn set_compaction(&self, n: Option<u64>) {
        self.compact_after.store(n.unwrap_or(0), Ordering::Relaxed);
    }

    /// Whether `open` found a file it had to discard (mismatched header —
    /// written by a different format or encoding revision).
    pub fn was_invalidated(&self) -> bool {
        self.invalidated
    }

    /// The damage report when `open` had to drop bad lines from a torn or
    /// corrupted body; `None` when the file loaded clean (or was missing
    /// or invalidated wholesale).
    pub fn salvage(&self) -> Option<&SalvageReport> {
        self.salvage.as_ref()
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl QueryStore for DiskQueryStore {
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult> {
        let result = self.mem.lookup(key)?;
        // A hit refreshes the entry's last-used generation, which is what
        // keeps live entries out of compaction's reach. Idempotent within
        // a run, so a key already stamped this generation skips the
        // key-clone insert entirely (the common case on warm scans).
        let mut stamps = self.last_used[shard_index(key)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match stamps.get(key) {
            Some(&g) if g == self.generation => {}
            _ => {
                stamps.insert(key.clone(), self.generation);
            }
        }
        drop(stamps);
        Some(result)
    }

    fn insert(&self, key: CacheKey, result: &QueryResult) {
        if matches!(result, QueryResult::Unknown) {
            return; // mirror the cache: never stored, so never stamped
        }
        self.last_used[shard_index(&key)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.clone(), self.generation);
        self.mem.insert(key, result);
    }

    fn stats(&self) -> CacheStats {
        self.mem.stats()
    }
}

/// The first token of every query-store header line.
const QUERY_STORE_HEADER_PREFIX: &str = "stack-query-store";

/// Statistics of one store merge (either store kind; the scan store's
/// merge reports through the same shape).
#[derive(Clone, Copy, Debug, Default)]
pub struct MergeStats {
    /// Input store files read.
    pub inputs: usize,
    /// Entries across all inputs (duplicates counted every time they
    /// appear beyond the first).
    pub entries_in: u64,
    /// Entries in the merged output.
    pub entries_out: u64,
    /// Input entries whose key was already present (value equality was
    /// asserted; stamps took the max).
    pub duplicates: u64,
    /// Entries dropped by the compaction horizon.
    pub pruned: u64,
    /// The output header's generation: the max across inputs.
    pub generation: u64,
}

/// Why a store merge (or inspection) failed. Merging is strict where
/// `open` is forgiving: a store that cannot be trusted byte for byte is
/// a loud error, never a silent discard — a fleet-shared cache built from
/// a half-read input would serve wrong answers forever.
#[derive(Debug)]
pub enum MergeError {
    /// Reading an input or writing the output failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        error: io::Error,
    },
    /// An input was written by a different format or encoding/fingerprint
    /// revision (or is not a store file at all).
    Incompatible {
        /// The offending input.
        path: PathBuf,
        /// What exactly mismatched, naming found vs. expected.
        reason: String,
    },
    /// Two inputs store different values under the same key — one of them
    /// is corrupt or was produced under different semantics.
    Conflict {
        /// The input whose entry disagreed with an earlier one.
        path: PathBuf,
        /// The conflicting key, rendered in the store's line syntax.
        key: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            MergeError::Incompatible { path, reason } => {
                write!(f, "{}: incompatible store: {reason}", path.display())
            }
            MergeError::Conflict { path, key } => write!(
                f,
                "{}: conflicting value for key {key} (inputs disagree; refusing to merge)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// What [`DiskQueryStore::inspect`] (and the scan store's counterpart)
/// reads off a store file without trusting it: the header fields, whether
/// they match the running binary, and a last-used histogram when the body
/// parses.
#[derive(Clone, Debug)]
pub struct StoreInspection {
    /// `"query"` or `"scan"`.
    pub kind: &'static str,
    /// The header's format version.
    pub format_version: u64,
    /// The header's encoding revision.
    pub encoding_revision: u64,
    /// The header's fingerprint revision (scan stores only).
    pub fingerprint_revision: Option<u64>,
    /// The header's generation (0 for formats that predate generations).
    pub generation: u64,
    /// Whether every header field matches the running binary — i.e.
    /// whether `open` would load this file and `merge` would accept it.
    pub compatible: bool,
    /// Whether any body line failed to checksum or parse under the
    /// current line format (those lines were dropped; the rest counted).
    pub malformed: bool,
    /// Entries that checksummed and parsed (salvageable content).
    pub entries: u64,
    /// Entries in the intact leading prefix, before the first bad line.
    pub salvageable_prefix: u64,
    /// Byte offset of the first bad line, when `malformed`.
    pub first_bad_offset: Option<u64>,
    /// Body lines dropped as unverifiable.
    pub dropped_lines: u64,
    /// last-used generation stamp → entry count.
    pub last_used: BTreeMap<u64, u64>,
}

impl StoreInspection {
    /// Render as the aligned text block `stack store inspect` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} store", self.kind);
        let _ = writeln!(out, "  format version   {:>8}", self.format_version);
        let _ = writeln!(out, "  encoding rev     {:>8}", self.encoding_revision);
        if let Some(fpr) = self.fingerprint_revision {
            let _ = writeln!(out, "  fingerprint rev  {:>8}", fpr);
        }
        let _ = writeln!(out, "  generation       {:>8}", self.generation);
        let _ = writeln!(
            out,
            "  compatible       {:>8}",
            if self.compatible { "yes" } else { "NO" }
        );
        if self.malformed {
            let _ = writeln!(
                out,
                "  body             {} bad line{} (first at byte offset {})",
                self.dropped_lines,
                if self.dropped_lines == 1 { "" } else { "s" },
                self.first_bad_offset.unwrap_or(0)
            );
            let _ = writeln!(
                out,
                "  salvageable      {:>8} leading entr{} ({} total)",
                self.salvageable_prefix,
                if self.salvageable_prefix == 1 {
                    "y"
                } else {
                    "ies"
                },
                self.entries
            );
        }
        let _ = writeln!(out, "  entries          {:>8}", self.entries);
        if !self.last_used.is_empty() {
            let _ = writeln!(out, "  last used:");
            for (stamp, count) in &self.last_used {
                let age = self.generation.saturating_sub(*stamp);
                let _ = writeln!(
                    out,
                    "    gen {stamp:>6} ({age:>3} old)  {count:>8} entr{}",
                    if *count == 1 { "y" } else { "ies" }
                );
            }
        }
        out.trim_end().to_string()
    }
}

/// Split a store header line like `stack-query-store v2 enc1 gen7` into
/// its tag/number fields (`[("v", 2), ("enc", 1), ("gen", 7)]`). `None`
/// when the prefix is absent or any token is not tag-then-digits. Shared
/// with the scan store's header (`stack-scan-store v2 enc1 fpr1 gen3`).
pub fn header_fields<'a>(line: &'a str, prefix: &str) -> Option<Vec<(&'a str, u64)>> {
    let rest = line.strip_prefix(prefix)?;
    if !rest.is_empty() && !rest.starts_with(' ') {
        return None;
    }
    let mut fields = Vec::new();
    for token in rest.split_whitespace() {
        let digits = token.find(|c: char| c.is_ascii_digit())?;
        if digits == 0 {
            return None;
        }
        let (tag, number) = token.split_at(digits);
        fields.push((tag, number.parse().ok()?));
    }
    Some(fields)
}

/// Check a header line against the running binary's expected field values,
/// returning a found-vs-expected reason on any mismatch. `expected` lists
/// the revision fields that must match exactly; extra header fields (like
/// `gen`) are ignored. Shared by both stores' merge paths (the scan store
/// lives in `stack-core`, hence public).
pub fn check_header_compatible(
    line: &str,
    prefix: &str,
    expected: &[(&str, u64)],
) -> Result<(), String> {
    let fields = header_fields(line, prefix)
        .ok_or_else(|| format!("not a {prefix} file (header `{line}`)"))?;
    for (tag, want) in expected {
        let found = fields.iter().find(|(t, _)| t == tag).map(|(_, n)| *n);
        match found {
            Some(n) if n == *want => {}
            Some(n) => {
                return Err(format!(
                    "{tag} revision mismatch: file has {tag}{n}, this binary expects {tag}{want}"
                ))
            }
            None => return Err(format!("header `{line}` lacks the {tag} field")),
        }
    }
    Ok(())
}

/// Shared body of both stores' `inspect`: parse the header leniently,
/// compare against the expected fields, and histogram the last-used
/// stamps `parse_stamps` extracts — called with the full file text and
/// the header's generation. `parse_stamps` is salvage-aware: it returns
/// every stamp it could verify plus the [`SalvageReport`] describing what
/// it had to drop, so an inspection of a torn store shows how much of it
/// is recoverable instead of a bare `malformed`.
pub fn inspect_text(
    text: &str,
    kind: &'static str,
    prefix: &str,
    expected: &[(&str, u64)],
    parse_stamps: impl Fn(&str, u64) -> (Vec<u64>, SalvageReport),
) -> Option<StoreInspection> {
    let first = text.lines().next().unwrap_or("");
    let fields = header_fields(first, prefix)?;
    let field = |tag: &str| fields.iter().find(|(t, _)| *t == tag).map(|(_, n)| *n);
    let compatible = check_header_compatible(first, prefix, expected).is_ok();
    // Formats that predate generations get an unbounded stamp horizon so
    // their bodies still count.
    let (stamps, salvage) = parse_stamps(text, field("gen").unwrap_or(u64::MAX));
    let mut last_used = BTreeMap::new();
    for &stamp in &stamps {
        *last_used.entry(stamp).or_insert(0) += 1;
    }
    Some(StoreInspection {
        kind,
        format_version: field("v").unwrap_or(0),
        encoding_revision: field("enc").unwrap_or(0),
        fingerprint_revision: field("fpr"),
        generation: field("gen").unwrap_or(0),
        compatible,
        malformed: !salvage.is_clean(),
        entries: stamps.len() as u64,
        salvageable_prefix: salvage.valid_prefix_entries,
        first_bad_offset: salvage.first_bad_offset,
        dropped_lines: salvage.dropped_lines,
        last_used,
    })
}

/// What a salvage pass over a store body recovered and what it dropped.
/// Produced at `open` (both stores) and by `inspect`; a clean body has
/// zero dropped lines and no first-bad offset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Body lines (or multi-line units, for the scan store) dropped
    /// because a checksum or the line syntax failed to verify.
    pub dropped_lines: u64,
    /// Byte offset, from the start of the file, of the first bad line.
    pub first_bad_offset: Option<u64>,
    /// Entries recovered before the first bad line — the intact leading
    /// prefix a simple truncation leaves behind.
    pub valid_prefix_entries: u64,
    /// Total entries recovered (the prefix plus every verifiable line
    /// after the damage).
    pub salvaged_entries: u64,
}

impl SalvageReport {
    /// Whether the body verified in full (nothing was dropped).
    pub fn is_clean(&self) -> bool {
        self.dropped_lines == 0
    }

    /// Count one recovered entry (salvage parsers of both stores).
    pub fn entry(&mut self) {
        if self.first_bad_offset.is_none() {
            self.valid_prefix_entries += 1;
        }
        self.salvaged_entries += 1;
    }

    /// Count one dropped line at `offset` (salvage parsers of both
    /// stores).
    pub fn bad(&mut self, offset: u64) {
        self.dropped_lines += 1;
        if self.first_bad_offset.is_none() {
            self.first_bad_offset = Some(offset);
        }
    }
}

/// CRC-32 (IEEE, reflected, polynomial `0xEDB88320`) lookup table,
/// computed at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum every v4 store line carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Append `payload` to `out` as one checksummed store line:
/// `<payload> !<crc32 as 8 lower-case hex digits>\n`. Shared by both
/// stores' writers (the scan store lives in `stack-core`, hence public).
pub fn write_checksummed_line(out: &mut String, payload: &str) {
    let _ = writeln!(out, "{payload} !{:08x}", crc32(payload.as_bytes()));
}

/// Verify one store line's trailing ` !<crc32>` checksum, returning the
/// payload it covers. `None` when the suffix is missing, not 8 hex
/// digits, or does not match — the line cannot be trusted.
pub fn verify_checksummed_line(line: &str) -> Option<&str> {
    let (payload, sum) = line.rsplit_once(" !")?;
    if sum.len() != 8 || !sum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let sum = u32::from_str_radix(sum, 16).ok()?;
    (crc32(payload.as_bytes()) == sum).then_some(payload)
}

/// Iterate the body lines of a store file (everything from `body_start`
/// on), yielding each line with its byte offset and whether it was
/// newline-terminated. An unterminated final line is truncation debris —
/// the writers always terminate every line — so salvage drops it even
/// when its checksum happens to verify. Shared by both stores' salvage
/// parsers (the scan store lives in `stack-core`, hence public).
pub fn body_lines(text: &str, body_start: usize) -> impl Iterator<Item = (&str, u64, bool)> {
    let body = text.get(body_start..).unwrap_or("");
    let mut pos = 0;
    std::iter::from_fn(move || {
        while pos < body.len() {
            let end = body[pos..].find('\n').map_or(body.len(), |i| pos + i);
            let line = &body[pos..end];
            let offset = (body_start + pos) as u64;
            let terminated = end < body.len();
            pos = end + 1;
            if line.is_empty() {
                continue;
            }
            return Some((line, offset, terminated));
        }
        None
    })
}

/// The canonical text rendering of a cache key (what `U`/`S` lines carry).
fn key_text(key: &CacheKey) -> String {
    let fps: Vec<String> = key.iter().map(|fp| format!("{fp:032x}")).collect();
    fps.join(",")
}

/// Write a complete store file — header at `generation`, then the given
/// (already sorted) entries — atomically: serialize to a sibling temp
/// file, then rename over the target, so a crash mid-write never leaves a
/// truncated store behind. The temp name appends to the full path (never
/// replaces an extension) and carries the pid, so concurrent savers of a
/// shared store file never collide on it; the rename stays within one
/// directory, so it is atomic. Output is byte-deterministic in its
/// inputs.
fn write_store_file(
    path: &Path,
    generation: u64,
    entries: &[(CacheKey, QueryResult, u64)],
) -> io::Result<()> {
    let mut out = DiskQueryStore::header(generation);
    out.push('\n');
    for (key, result, stamp) in entries {
        write_entry(&mut out, key, result, *stamp);
    }
    let mut tmp = path.to_path_buf().into_os_string();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Serialize one entry as a checksummed `U`/`S` line with its last-used
/// generation stamp. `Unknown` cannot appear: the in-memory table never
/// stores it. `Sat` writes the fact alone — witnesses are process-local
/// (see the module docs).
fn write_entry(out: &mut String, key: &CacheKey, result: &QueryResult, stamp: u64) {
    let tag = match result {
        QueryResult::Unsat => 'U',
        QueryResult::Sat(_) => 'S',
        QueryResult::Unknown => unreachable!("Unknown is never stored"),
    };
    write_checksummed_line(out, &format!("{tag} g{stamp} {}", key_text(key)));
}

/// Parse a whole store file into its header generation, its verifiable
/// entries, and the salvage report describing what was dropped. `None`
/// only on a header mismatch — a file written by a different format or
/// encoding revision cannot be trusted at all; a file with a good header
/// is salvaged line by line.
#[allow(clippy::type_complexity)]
fn parse_store(text: &str) -> Option<(u64, Vec<(CacheKey, QueryResult, u64)>, SalvageReport)> {
    let first = text.lines().next()?;
    let generation: u64 = first
        .strip_prefix(&format!(
            "stack-query-store v{STORE_FORMAT_VERSION} enc{ENCODING_REVISION} gen"
        ))?
        .parse()
        .ok()?;
    let (entries, salvage) = parse_body(text, first.len() + 1, generation);
    Some((generation, entries, salvage))
}

/// Salvage-parse the entry lines of a store body (everything from
/// `body_start` on): a line survives only if its checksum verifies, its
/// syntax parses, its stamp is not from the future, and its key was not
/// already seen (a duplicate key is the signature of a torn write that
/// spliced two file versions — the first occurrence wins). Everything
/// else is dropped and counted.
#[allow(clippy::type_complexity)]
fn parse_body(
    text: &str,
    body_start: usize,
    generation: u64,
) -> (Vec<(CacheKey, QueryResult, u64)>, SalvageReport) {
    let mut entries = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut salvage = SalvageReport::default();
    for (line, offset, terminated) in body_lines(text, body_start) {
        let parsed = if terminated {
            verify_checksummed_line(line).and_then(|payload| parse_entry(payload, generation))
        } else {
            None
        };
        match parsed {
            Some((key, result, stamp)) if seen.insert(key.clone()) => {
                entries.push((key, result, stamp));
                salvage.entry();
            }
            _ => salvage.bad(offset),
        }
    }
    (entries, salvage)
}

/// Parse one verified entry payload (`U g<stamp> <key>` / `S g<stamp>
/// <key>`). Stamps from beyond `generation` are malformed.
fn parse_entry(payload: &str, generation: u64) -> Option<(CacheKey, QueryResult, u64)> {
    let (kind, rest) = payload.split_at_checked(2)?;
    let (stamp_text, rest) = rest.split_once(' ')?;
    let stamp: u64 = stamp_text.strip_prefix('g')?.parse().ok()?;
    if stamp > generation {
        return None;
    }
    match kind {
        "U " => Some((parse_key(rest)?, QueryResult::Unsat, stamp)),
        // A `S` line is the decided fact alone; the empty model is the
        // "witness elided" marker lookups hand back.
        "S " => Some((parse_key(rest)?, QueryResult::Sat(Model::new()), stamp)),
        _ => None,
    }
}

/// Parse a comma-separated list of 128-bit hex fingerprints.
fn parse_key(text: &str) -> Option<CacheKey> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',')
        .map(|fp| u128::from_str_radix(fp, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("stack-store-{tag}-{}.qs", std::process::id()))
    }

    fn sat(pairs: &[(&str, u64)]) -> QueryResult {
        let mut model = Model::new();
        for (name, value) in pairs {
            model.set(name, *value);
        }
        QueryResult::Sat(model)
    }

    #[test]
    fn roundtrip_preserves_facts_and_elides_witnesses() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        store.insert(vec![1, 2, 3], &QueryResult::Unsat);
        store.insert(vec![9], &sat(&[("arg0_x", 42), ("weird name=%,", 7)]));
        store.insert(vec![5, 6], &sat(&[]));
        store.insert(vec![7], &QueryResult::Unknown); // must not persist
        assert_eq!(store.save().unwrap(), 3);

        let reloaded = DiskQueryStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 3);
        assert!(!reloaded.was_invalidated());
        assert!(matches!(
            reloaded.lookup(&vec![1, 2, 3]),
            Some(QueryResult::Unsat)
        ));
        match reloaded.lookup(&vec![9]) {
            Some(QueryResult::Sat(model)) => {
                // The fact survives; the witness is process-local and does
                // not (see the module docs on why it must not).
                assert_eq!(model.len(), 0, "witness models are never persisted");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        assert!(matches!(
            reloaded.lookup(&vec![5, 6]),
            Some(QueryResult::Sat(_))
        ));
        assert!(reloaded.lookup(&vec![7]).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_deterministic_within_a_generation() {
        let path = temp_path("deterministic");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        store.insert(vec![3, 4], &QueryResult::Unsat);
        store.insert(vec![1], &sat(&[("b", 2), ("a", 1)]));
        store.save().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        // Saving the same store again (same run, same generation) is
        // byte-identical.
        store.save().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second);
        // A re-open starts the next generation: an untouched store differs
        // from the previous file only in the header's generation.
        let reloaded = DiskQueryStore::open(&path).unwrap();
        assert_eq!(reloaded.generation(), store.generation() + 1);
        reloaded.save().unwrap();
        let third = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            first.split_once('\n').unwrap().1,
            third.split_once('\n').unwrap().1,
            "entry lines (incl. last-used stamps) unchanged when nothing was touched"
        );
        assert!(third.starts_with(&DiskQueryStore::header(reloaded.generation())));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_revision_self_invalidates() {
        let path = temp_path("stale");
        std::fs::write(
            &path,
            format!(
                "stack-query-store v{STORE_FORMAT_VERSION} enc{} gen1\nU g1 1,2\n",
                ENCODING_REVISION + 1
            ),
        )
        .unwrap();
        let store = DiskQueryStore::open(&path).unwrap();
        assert!(store.was_invalidated());
        assert_eq!(store.loaded_entries(), 0);
        assert!(store.lookup(&vec![1, 2]).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn old_format_version_self_invalidates() {
        let path = temp_path("v1");
        std::fs::write(
            &path,
            format!("stack-query-store v1 enc{ENCODING_REVISION}\nU 1,2\n"),
        )
        .unwrap();
        let store = DiskQueryStore::open(&path).unwrap();
        assert!(store.was_invalidated());
        assert_eq!(store.generation(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc32_known_answer() {
        // The standard CRC-32 (IEEE) check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        let mut line = String::new();
        write_checksummed_line(&mut line, "U g1 2a");
        assert_eq!(verify_checksummed_line(line.trim_end()), Some("U g1 2a"));
        assert_eq!(verify_checksummed_line("U g1 2a !deadbeef"), None);
        assert_eq!(verify_checksummed_line("U g1 2a"), None);
    }

    /// One checksummed body line (payload + valid CRC + newline).
    fn line(payload: &str) -> String {
        let mut out = String::new();
        write_checksummed_line(&mut out, payload);
        out
    }

    #[test]
    fn bad_lines_are_salvaged_not_fatal() {
        for bad in [
            "garbage\n".to_string(),
            line("U g1 not-hex"),            // checksums, does not parse
            line("S g1 1,2 m x=1"),          // v2-style witness payload
            line("X g1 3"),                  // unknown entry kind
            line("U 4,5"),                   // missing stamp
            line("U g9 6,7"),                // stamp from the future
            "U g1 8 !0000000\n".to_string(), // truncated checksum
        ] {
            let path = temp_path("salvage");
            std::fs::write(
                &path,
                format!(
                    "{}\n{}{bad}{}",
                    DiskQueryStore::header(1),
                    line("U g1 a"),
                    line("U g1 b,c")
                ),
            )
            .unwrap();
            let store = DiskQueryStore::open(&path).unwrap();
            assert!(!store.was_invalidated(), "bad line {bad:?}");
            assert_eq!(store.loaded_entries(), 2, "bad line {bad:?}");
            assert!(store.lookup(&vec![0xa]).is_some());
            assert!(store.lookup(&vec![0xb, 0xc]).is_some());
            let salvage = store.salvage().expect("damage must be reported");
            assert_eq!(salvage.dropped_lines, 1);
            assert_eq!(salvage.valid_prefix_entries, 1);
            assert_eq!(salvage.salvaged_entries, 2);
            let header_len = DiskQueryStore::header(1).len() as u64 + 1;
            assert_eq!(
                salvage.first_bad_offset,
                Some(header_len + line("U g1 a").len() as u64),
                "bad line {bad:?}"
            );
            // A save rewrites the file canonically; the re-open is clean.
            store.save().unwrap();
            let healed = DiskQueryStore::open(&path).unwrap();
            assert_eq!(healed.loaded_entries(), 2);
            assert!(healed.salvage().is_none());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn duplicate_keys_keep_the_first_occurrence() {
        // A torn write that splices two file versions can duplicate a key;
        // salvage keeps the first line and drops (and counts) the second.
        let path = temp_path("dup");
        std::fs::write(
            &path,
            format!(
                "{}\n{}{}{}",
                DiskQueryStore::header(3),
                line("U g3 1"),
                line("U g1 1"),
                line("S g2 2")
            ),
        )
        .unwrap();
        let store = DiskQueryStore::open(&path).unwrap();
        assert!(!store.was_invalidated());
        assert_eq!(store.loaded_entries(), 2);
        assert!(matches!(store.lookup(&vec![1]), Some(QueryResult::Unsat)));
        let salvage = store.salvage().unwrap();
        assert_eq!(salvage.dropped_lines, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_store_salvages_the_intact_prefix() {
        let path = temp_path("truncate");
        store_with(
            &path,
            &[
                (vec![1], QueryResult::Unsat),
                (vec![2], QueryResult::Unsat),
                (vec![3], QueryResult::Unsat),
            ],
        );
        let full = std::fs::read(&path).unwrap();
        let header_len = full.iter().position(|&b| b == b'\n').unwrap() + 1;
        // Cut mid-way through the last line: the final fragment is dropped
        // (unterminated), the first two entries survive.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let store = DiskQueryStore::open(&path).unwrap();
        assert!(!store.was_invalidated());
        assert_eq!(store.loaded_entries(), 2);
        let salvage = store.salvage().unwrap();
        assert_eq!(salvage.dropped_lines, 1);
        assert_eq!(salvage.valid_prefix_entries, 2);
        assert!(salvage.first_bad_offset.unwrap() >= header_len as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_rejects_stores_that_need_salvage() {
        let good = temp_path("merge-salvage-good");
        let torn = temp_path("merge-salvage-torn");
        let out = temp_path("merge-salvage-out");
        store_with(&good, &[(vec![1], QueryResult::Unsat)]);
        std::fs::write(
            &torn,
            format!("{}\n{}garbage\n", DiskQueryStore::header(1), line("U g1 2")),
        )
        .unwrap();
        let err = DiskQueryStore::merge(&out, &[good.clone(), torn.clone()], None).unwrap_err();
        match &err {
            MergeError::Incompatible { path, reason } => {
                assert_eq!(path, &torn);
                assert!(reason.contains("salvage"), "{reason}");
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        assert!(!out.exists());
        std::fs::remove_file(&good).unwrap();
        std::fs::remove_file(&torn).unwrap();
    }

    #[test]
    fn compaction_prunes_only_entries_unused_for_n_generations() {
        let path = temp_path("compaction");
        let _ = std::fs::remove_file(&path);
        // Generation 1: two entries.
        let store = DiskQueryStore::open(&path).unwrap();
        assert_eq!(store.generation(), 1);
        store.insert(vec![1], &QueryResult::Unsat);
        store.insert(vec![2], &sat(&[("x", 5)]));
        store.save().unwrap();
        // Generations 2 and 3: only entry [1] is ever looked up.
        for expected_gen in [2, 3] {
            let store = DiskQueryStore::open(&path).unwrap();
            assert_eq!(store.generation(), expected_gen);
            assert!(store.lookup(&vec![1]).is_some());
            store.save().unwrap();
        }
        // Generation 4, compaction horizon 2: entry [2] was last used at
        // generation 1 (3 generations ago) and is pruned; entry [1] (used at
        // 3) survives, as does a fresh insert.
        let store = DiskQueryStore::open(&path).unwrap();
        store.set_compaction(Some(2));
        store.insert(vec![3], &QueryResult::Unsat);
        assert_eq!(store.save().unwrap(), 2);
        let reloaded = DiskQueryStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 2);
        assert!(reloaded.lookup(&vec![1]).is_some());
        assert!(reloaded.lookup(&vec![3]).is_some());
        assert!(reloaded.lookup(&vec![2]).is_none(), "aged-out entry pruned");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        assert_eq!(store.loaded_entries(), 0);
        assert!(!store.was_invalidated());
        assert_eq!(store.stats().entries, 0);
    }

    /// Build a store file at `path` holding the given entries, saved at
    /// generation 1.
    fn store_with(path: &PathBuf, entries: &[(Vec<u128>, QueryResult)]) {
        let _ = std::fs::remove_file(path);
        let store = DiskQueryStore::open(path).unwrap();
        for (key, result) in entries {
            store.insert(key.clone(), result);
        }
        store.save().unwrap();
    }

    #[test]
    fn merge_unions_entries_and_counts_duplicates() {
        let a = temp_path("merge-a");
        let b = temp_path("merge-b");
        let out = temp_path("merge-out");
        store_with(
            &a,
            &[(vec![1], QueryResult::Unsat), (vec![2], sat(&[("x", 3)]))],
        );
        store_with(
            &b,
            &[(vec![2], sat(&[("x", 3)])), (vec![5], QueryResult::Unsat)],
        );
        let stats = DiskQueryStore::merge(&out, &[a.clone(), b.clone()], None).unwrap();
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.entries_in, 4);
        assert_eq!(stats.entries_out, 3);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.pruned, 0);
        let merged = DiskQueryStore::open(&out).unwrap();
        assert!(!merged.was_invalidated());
        assert_eq!(merged.loaded_entries(), 3);
        assert!(matches!(merged.lookup(&vec![1]), Some(QueryResult::Unsat)));
        assert!(matches!(merged.lookup(&vec![2]), Some(QueryResult::Sat(_))));
        assert!(matches!(merged.lookup(&vec![5]), Some(QueryResult::Unsat)));
        for p in [a, b, out] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn merge_with_itself_is_the_identity() {
        let a = temp_path("merge-self");
        let out = temp_path("merge-self-out");
        store_with(
            &a,
            &[
                (vec![9, 10], sat(&[("a", 1), ("b", 2)])),
                (vec![4], QueryResult::Unsat),
            ],
        );
        DiskQueryStore::merge(&out, &[a.clone(), a.clone()], None).unwrap();
        assert_eq!(
            std::fs::read_to_string(&a).unwrap(),
            std::fs::read_to_string(&out).unwrap(),
            "merge(a, a) must reproduce a byte for byte"
        );
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn merge_takes_max_stamps_and_compacts() {
        let a = temp_path("merge-stamp-a");
        let b = temp_path("merge-stamp-b");
        let out = temp_path("merge-stamp-out");
        // `a`: entry [1] stamped at generation 1, never touched again, plus
        // a younger entry; re-open twice so the header reaches generation 3.
        store_with(&a, &[(vec![1], QueryResult::Unsat)]);
        for _ in 0..2 {
            let store = DiskQueryStore::open(&a).unwrap();
            store.insert(vec![2], &QueryResult::Unsat);
            store.save().unwrap();
        }
        // `b`: the same old entry, but freshly used at generation 1.
        store_with(&b, &[(vec![1], QueryResult::Unsat)]);
        let stats = DiskQueryStore::merge(&out, &[a.clone(), b.clone()], Some(2)).unwrap();
        assert_eq!(stats.generation, 3, "output generation is the max input's");
        // [1]'s stamp is max(1, 1) = 1, which is 2 generations old at
        // generation 3: pruned. [2] (stamped 3) survives.
        assert_eq!(stats.pruned, 1);
        let merged = DiskQueryStore::open(&out).unwrap();
        assert!(merged.lookup(&vec![1]).is_none(), "aged-out entry pruned");
        assert!(merged.lookup(&vec![2]).is_some());
        for p in [a, b, out] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn merge_rejects_incompatible_inputs_loudly() {
        let good = temp_path("merge-good");
        let bad = temp_path("merge-bad");
        let out = temp_path("merge-bad-out");
        store_with(&good, &[(vec![1], QueryResult::Unsat)]);
        std::fs::write(
            &bad,
            format!(
                "stack-query-store v{STORE_FORMAT_VERSION} enc{} gen1\nU g1 1,2\n",
                ENCODING_REVISION + 1
            ),
        )
        .unwrap();
        let err = DiskQueryStore::merge(&out, &[good.clone(), bad.clone()], None).unwrap_err();
        match &err {
            MergeError::Incompatible { path, reason } => {
                assert_eq!(path, &bad);
                assert!(reason.contains("enc"), "reason names the field: {reason}");
                assert!(
                    reason.contains(&format!("enc{}", ENCODING_REVISION + 1)),
                    "reason names the found revision: {reason}"
                );
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        assert!(!out.exists(), "a failed merge writes nothing");
        std::fs::remove_file(&good).unwrap();
        std::fs::remove_file(&bad).unwrap();
    }

    #[test]
    fn merge_rejects_conflicting_values_loudly() {
        let a = temp_path("merge-conflict-a");
        let b = temp_path("merge-conflict-b");
        let out = temp_path("merge-conflict-out");
        // The same key deciding SAT in one store and UNSAT in another means
        // one of them is corrupt (the fact is canonical per key).
        store_with(&a, &[(vec![7], sat(&[("x", 1)]))]);
        store_with(&b, &[(vec![7], QueryResult::Unsat)]);
        let err = DiskQueryStore::merge(&out, &[a.clone(), b.clone()], None).unwrap_err();
        match &err {
            MergeError::Conflict { path, key } => {
                assert_eq!(path, &b);
                assert_eq!(key, &key_text(&vec![7]));
            }
            other => panic!("expected Conflict, got {other:?}"),
        }
        assert!(!out.exists());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn inspect_reads_headers_even_when_incompatible() {
        let path = temp_path("inspect");
        store_with(
            &path,
            &[(vec![1], QueryResult::Unsat), (vec![2], QueryResult::Unsat)],
        );
        let info = DiskQueryStore::inspect(&path).unwrap();
        assert_eq!(info.kind, "query");
        assert_eq!(info.format_version, u64::from(STORE_FORMAT_VERSION));
        assert_eq!(info.encoding_revision, u64::from(ENCODING_REVISION));
        assert_eq!(info.fingerprint_revision, None);
        assert_eq!(info.generation, 1);
        assert!(info.compatible);
        assert!(!info.malformed);
        assert_eq!(info.entries, 2);
        assert_eq!(info.last_used.get(&1), Some(&2));
        assert!(info.render().contains("entries"));

        // A future encoding revision: open/merge reject it, inspect still
        // reports what the header says.
        std::fs::write(
            &path,
            format!(
                "stack-query-store v{STORE_FORMAT_VERSION} enc{} gen4\n{}{}",
                ENCODING_REVISION + 9,
                line("U g2 1"),
                line("U g4 2")
            ),
        )
        .unwrap();
        let info = DiskQueryStore::inspect(&path).unwrap();
        assert!(!info.compatible);
        assert_eq!(info.encoding_revision, u64::from(ENCODING_REVISION) + 9);
        assert_eq!(info.generation, 4);
        assert!(!info.malformed, "same line format still counts entries");
        assert_eq!(info.entries, 2);
        assert_eq!(info.last_used.get(&2), Some(&1));
        assert_eq!(info.last_used.get(&4), Some(&1));
        // A torn body: inspect reports the salvageable prefix and the byte
        // offset of the first bad line instead of a bare `malformed`.
        let header = DiskQueryStore::header(2);
        std::fs::write(
            &path,
            format!("{header}\n{}corrupt\n{}", line("U g1 1"), line("U g2 2")),
        )
        .unwrap();
        let info = DiskQueryStore::inspect(&path).unwrap();
        assert!(info.compatible);
        assert!(info.malformed);
        assert_eq!(info.entries, 2);
        assert_eq!(info.salvageable_prefix, 1);
        assert_eq!(info.dropped_lines, 1);
        assert_eq!(
            info.first_bad_offset,
            Some((header.len() + 1 + line("U g1 1").len()) as u64)
        );
        let rendered = info.render();
        assert!(rendered.contains("1 bad line"), "{rendered}");
        assert!(rendered.contains("salvageable"), "{rendered}");
        // Not a store file at all: a loud error.
        std::fs::write(&path, "something else\n").unwrap();
        assert!(matches!(
            DiskQueryStore::inspect(&path),
            Err(MergeError::Incompatible { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_fields_parse_and_reject() {
        assert_eq!(
            header_fields("stack-query-store v2 enc1 gen7", "stack-query-store"),
            Some(vec![("v", 2), ("enc", 1), ("gen", 7)])
        );
        assert_eq!(
            header_fields("stack-query-store", "stack-query-store"),
            Some(vec![])
        );
        assert!(header_fields("stack-query-storev2", "stack-query-store").is_none());
        assert!(header_fields("other v2", "stack-query-store").is_none());
        assert!(header_fields("stack-query-store vv", "stack-query-store").is_none());
    }
}
