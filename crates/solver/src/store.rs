//! Pluggable query stores: where decided solver answers live between queries
//! — and, for the disk-backed store, between *processes*.
//!
//! The [`QueryStore`] trait abstracts the destination of memoized query
//! results. [`BvSolver`](crate::solver::BvSolver) only ever talks to the
//! trait: on every query it looks the canonical fingerprint key up, and on
//! every decided (never `Unknown`) miss it inserts the result back. Two
//! implementations exist:
//!
//! * [`QueryCache`] — the sharded in-memory table of `cache.rs`, shared
//!   across the parallel checker's worker threads. Dies with the process.
//! * [`DiskQueryStore`] — an in-memory table bracketed by [`open`] and
//!   [`save`]: `open` loads every persisted fingerprint→result pair,
//!   `save` writes the table back (atomically, via a temp file + rename),
//!   so the next process — the next package of an archive scan, or the next
//!   scan of the same archive entirely — starts warm. This is the §6.5
//!   deployment mode: the paper's Debian-scale runs re-analyze thousands of
//!   packages that instantiate the same unstable idioms, and a cross-run
//!   store turns all but the first instance into a lookup.
//!
//! ## Persistence format
//!
//! The store file is line-oriented text. The first line is a header naming
//! the format version *and* the encoding revision:
//!
//! ```text
//! stack-query-store v1 enc1
//! U <fp>,<fp>,...
//! S <fp>,... m <name>=<value> <name>=<value>
//! ```
//!
//! `U`/`S` lines carry one UNSAT/SAT entry: the canonical cache key (sorted
//! 128-bit structural fingerprints, lower-case hex) and, for SAT, the
//! witness model (variable names percent-escaped, values decimal `u64`).
//! Entries are written sorted by key and models sorted by name, so saving
//! the same logical store always produces byte-identical files.
//!
//! A header that does not match the running binary's
//! [`STORE_FORMAT_VERSION`]/[`ENCODING_REVISION`] — or any malformed line —
//! causes the whole file to be discarded and the store to start empty
//! ([`DiskQueryStore::was_invalidated`] reports it). Fingerprints bake in
//! the term encoding, so a stale cache produced by an older encoder or
//! solver must self-invalidate rather than serve wrong answers. `Unknown`
//! results are never inserted (a budget exhaustion is a property of the
//! budget, not the formula), so they are never persisted either.
//!
//! [`open`]: DiskQueryStore::open
//! [`save`]: DiskQueryStore::save

use crate::cache::{CacheKey, CacheStats, QueryCache};
use crate::model::Model;
use crate::solver::QueryResult;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk layout version of the store file. Bump when the file syntax
/// changes.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Revision of everything a fingerprint's meaning depends on: the term
/// encoding, the structural fingerprint function, and the solver's decided
/// semantics. Bump whenever any of those change observably — persisted
/// entries from a different revision are discarded at `open`, so stale
/// caches self-invalidate instead of serving answers computed under
/// different semantics.
pub const ENCODING_REVISION: u32 = 1;

/// Destination of memoized query results.
///
/// `lookup` returns a previously decided result for a canonical key (and
/// counts a hit or miss); `insert` stores a decided result (`Unknown` must
/// be ignored). Implementations are shared across worker threads through an
/// `Arc`, so both methods take `&self`.
pub trait QueryStore: Send + Sync + std::fmt::Debug {
    /// Look up a decided result for `key`, updating hit/miss counters.
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult>;

    /// Store a decided result. `Unknown` is silently ignored.
    fn insert(&self, key: CacheKey, result: &QueryResult);

    /// Counters accumulated so far.
    fn stats(&self) -> CacheStats;
}

impl QueryStore for QueryCache {
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult> {
        QueryCache::lookup(self, key)
    }

    fn insert(&self, key: CacheKey, result: &QueryResult) {
        QueryCache::insert(self, key, result);
    }

    fn stats(&self) -> CacheStats {
        QueryCache::stats(self)
    }
}

/// A disk-backed query store: the in-memory sharded table plus load/save
/// against one file. See the module docs for the format and invalidation
/// rules.
#[derive(Debug)]
pub struct DiskQueryStore {
    path: PathBuf,
    mem: QueryCache,
    loaded: u64,
    invalidated: bool,
}

impl DiskQueryStore {
    /// The header line a store written by this binary carries.
    fn header() -> String {
        format!("stack-query-store v{STORE_FORMAT_VERSION} enc{ENCODING_REVISION}")
    }

    /// Open a store backed by `path`, loading every persisted entry. A
    /// missing file yields an empty store; a file with a mismatched header
    /// (older format or encoding revision) or any malformed content is
    /// discarded wholesale and [`was_invalidated`](Self::was_invalidated)
    /// reports it. Only I/O failures are errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<DiskQueryStore> {
        let path = path.into();
        let mut store = DiskQueryStore {
            path,
            mem: QueryCache::new(),
            loaded: 0,
            invalidated: false,
        };
        let text = match std::fs::read_to_string(&store.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        match parse_store(&text) {
            Some(entries) => {
                store.loaded = entries.len() as u64;
                for (key, result) in entries {
                    store.mem.insert(key, &result);
                }
            }
            None => store.invalidated = true,
        }
        Ok(store)
    }

    /// Write every entry back to the backing file: serialize to a sibling
    /// temp file, then rename over the target, so a crash mid-save never
    /// leaves a truncated store behind. Returns the number of entries
    /// written. Output is deterministic (entries sorted by key), so saving
    /// the same logical store twice produces byte-identical files.
    pub fn save(&self) -> io::Result<usize> {
        let mut entries = self.mem.entries_snapshot();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Self::header();
        out.push('\n');
        for (key, result) in &entries {
            write_entry(&mut out, key, result);
        }
        // The temp name appends to the full path (never replaces an
        // extension) and carries the pid, so concurrent savers of a shared
        // store file — or sibling stores differing only in extension —
        // never collide on it; the rename stays within one directory, so
        // it is atomic.
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(entries.len())
    }

    /// Number of entries loaded from disk at [`open`](Self::open) time.
    pub fn loaded_entries(&self) -> u64 {
        self.loaded
    }

    /// Whether `open` found a file it had to discard (mismatched header —
    /// written by a different format or encoding revision — or malformed
    /// content).
    pub fn was_invalidated(&self) -> bool {
        self.invalidated
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl QueryStore for DiskQueryStore {
    fn lookup(&self, key: &CacheKey) -> Option<QueryResult> {
        self.mem.lookup(key)
    }

    fn insert(&self, key: CacheKey, result: &QueryResult) {
        self.mem.insert(key, result);
    }

    fn stats(&self) -> CacheStats {
        self.mem.stats()
    }
}

/// Serialize one entry as a `U`/`S` line. `Unknown` cannot appear: the
/// in-memory table never stores it.
fn write_entry(out: &mut String, key: &CacheKey, result: &QueryResult) {
    let fps: Vec<String> = key.iter().map(|fp| format!("{fp:032x}")).collect();
    match result {
        QueryResult::Unsat => {
            let _ = writeln!(out, "U {}", fps.join(","));
        }
        QueryResult::Sat(model) => {
            let mut vars: Vec<(&String, &u64)> = model.iter().collect();
            vars.sort();
            let _ = write!(out, "S {} m", fps.join(","));
            for (name, value) in vars {
                let _ = write!(out, " {}={value}", escape(name));
            }
            out.push('\n');
        }
        QueryResult::Unknown => unreachable!("Unknown is never stored"),
    }
}

/// Parse a whole store file. `None` means "discard everything": wrong
/// header or any malformed line. (A cache is best-effort; a partially
/// trusted file is worse than an empty one.)
fn parse_store(text: &str) -> Option<Vec<(CacheKey, QueryResult)>> {
    let mut lines = text.lines();
    if lines.next()? != DiskQueryStore::header() {
        return None;
    }
    let mut entries = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_at_checked(2)?;
        match kind {
            "U " => entries.push((parse_key(rest)?, QueryResult::Unsat)),
            "S " => {
                let (key_text, model_text) = rest.split_once(" m")?;
                let mut model = Model::new();
                for pair in model_text.split_whitespace() {
                    let (name, value) = pair.split_once('=')?;
                    model.set(&unescape(name)?, value.parse().ok()?);
                }
                entries.push((parse_key(key_text)?, QueryResult::Sat(model)));
            }
            _ => return None,
        }
    }
    Some(entries)
}

/// Parse a comma-separated list of 128-bit hex fingerprints.
fn parse_key(text: &str) -> Option<CacheKey> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',')
        .map(|fp| u128::from_str_radix(fp, 16).ok())
        .collect()
}

/// Percent-escape a variable name so it never contains whitespace, `=`, or
/// `%` (the characters the line format relies on). Encoder-generated names
/// (`arg0_x`, `call3_memcpy`, …) pass through unchanged.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for byte in name.bytes() {
        match byte {
            b'%' | b'=' | b',' => {
                let _ = write!(out, "%{byte:02x}");
            }
            b if b.is_ascii_graphic() => out.push(b as char),
            b => {
                let _ = write!(out, "%{b:02x}");
            }
        }
    }
    out
}

/// Invert [`escape`]. `None` on malformed escapes or invalid UTF-8.
fn unescape(text: &str) -> Option<String> {
    let mut out = Vec::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("stack-store-{tag}-{}.qs", std::process::id()))
    }

    fn sat(pairs: &[(&str, u64)]) -> QueryResult {
        let mut model = Model::new();
        for (name, value) in pairs {
            model.set(name, *value);
        }
        QueryResult::Sat(model)
    }

    #[test]
    fn roundtrip_preserves_entries_and_models() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        store.insert(vec![1, 2, 3], &QueryResult::Unsat);
        store.insert(vec![9], &sat(&[("arg0_x", 42), ("weird name=%,", 7)]));
        store.insert(vec![5, 6], &sat(&[]));
        store.insert(vec![7], &QueryResult::Unknown); // must not persist
        assert_eq!(store.save().unwrap(), 3);

        let reloaded = DiskQueryStore::open(&path).unwrap();
        assert_eq!(reloaded.loaded_entries(), 3);
        assert!(!reloaded.was_invalidated());
        assert!(matches!(
            reloaded.lookup(&vec![1, 2, 3]),
            Some(QueryResult::Unsat)
        ));
        match reloaded.lookup(&vec![9]) {
            Some(QueryResult::Sat(model)) => {
                assert_eq!(model.get("arg0_x"), 42);
                assert_eq!(model.get("weird name=%,"), 7);
                assert_eq!(model.len(), 2);
            }
            other => panic!("expected SAT with model, got {other:?}"),
        }
        assert!(matches!(
            reloaded.lookup(&vec![5, 6]),
            Some(QueryResult::Sat(_))
        ));
        assert!(reloaded.lookup(&vec![7]).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_deterministic() {
        let path = temp_path("deterministic");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        store.insert(vec![3, 4], &QueryResult::Unsat);
        store.insert(vec![1], &sat(&[("b", 2), ("a", 1)]));
        store.save().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        // Re-open (different insertion order via load) and save again.
        let reloaded = DiskQueryStore::open(&path).unwrap();
        reloaded.save().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_revision_self_invalidates() {
        let path = temp_path("stale");
        std::fs::write(
            &path,
            format!(
                "stack-query-store v{STORE_FORMAT_VERSION} enc{}\nU 1,2\n",
                ENCODING_REVISION + 1
            ),
        )
        .unwrap();
        let store = DiskQueryStore::open(&path).unwrap();
        assert!(store.was_invalidated());
        assert_eq!(store.loaded_entries(), 0);
        assert!(store.lookup(&vec![1, 2]).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_content_self_invalidates() {
        for body in ["garbage\n", "U not-hex\n", "S 1 m broken\n", "X 1\n"] {
            let path = temp_path("malformed");
            std::fs::write(&path, format!("{}\n{body}", DiskQueryStore::header())).unwrap();
            let store = DiskQueryStore::open(&path).unwrap();
            assert!(store.was_invalidated(), "body {body:?}");
            assert_eq!(store.loaded_entries(), 0);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let store = DiskQueryStore::open(&path).unwrap();
        assert_eq!(store.loaded_entries(), 0);
        assert!(!store.was_invalidated());
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn escape_roundtrip() {
        for name in ["arg0_x", "call3_memcpy", "a b", "x=%y,", "héllo", ""] {
            assert_eq!(unescape(&escape(name)).as_deref(), Some(name));
        }
        let escaped = escape("a b=c%");
        assert!(!escaped.contains(' '));
        assert!(!escaped.contains('='));
    }
}
