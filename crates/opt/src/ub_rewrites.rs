//! Optimizations that exploit undefined behavior.
//!
//! Each rewrite here is one of the "aggressive" optimizations surveyed in
//! §2 of the paper: it is only sound under the assumption that the program
//! never triggers undefined behavior, and each one can silently discard a
//! sanity check the programmer intended to keep. The rewrites are
//! individually selectable so that [`crate::profile::CompilerProfile`] can
//! model which real compiler performs which rewrite at which `-O` level
//! (Figure 4).

use stack_ir::{
    BinOp, BlockId, Cfg, CmpPred, DomTree, Function, InstId, InstKind, Operand, Origin,
};

/// The individual UB-exploiting rewrites.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UbRewrite {
    /// `p + C < p` with a non-negative offset folds to `false`
    /// (no pointer overflow; Figure 1 / §2.2 example 1).
    PointerOverflowConst,
    /// `p + x < p` with a signed offset rewrites to `x < 0`
    /// (the FFmpeg bounds check of Figure 12).
    PointerOverflowAlgebra,
    /// A null check on a pointer that a dominating instruction already
    /// dereferenced (or that is the result of pointer arithmetic) folds away
    /// (Figure 2 / §2.2 example 2, Figure 11).
    NullCheckElim,
    /// `x + C < x` for signed `x` and positive constant `C` folds to `false`
    /// (§2.2 example 3).
    SignedOverflowConst,
    /// Value-range reasoning on signed arithmetic: with `x` known positive
    /// from a dominating branch, `x + C < 0` folds to `false`; with `k` known
    /// negative, `-k >= 0` folds to `true` (§2.2 example 4, Figure 13).
    SignedOverflowRange,
    /// `(C << x) == 0` with a non-zero constant folds to `false`
    /// (§2.2 example 5, the ext4 patch \[31]).
    ShiftFold,
    /// `abs(x) < 0` folds to `false` (§2.2 example 6, the PHP check \[18]).
    AbsFold,
}

impl UbRewrite {
    /// All rewrites, in a stable order.
    pub fn all() -> &'static [UbRewrite] {
        &[
            UbRewrite::PointerOverflowConst,
            UbRewrite::PointerOverflowAlgebra,
            UbRewrite::NullCheckElim,
            UbRewrite::SignedOverflowConst,
            UbRewrite::SignedOverflowRange,
            UbRewrite::ShiftFold,
            UbRewrite::AbsFold,
        ]
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            UbRewrite::PointerOverflowConst => "pointer overflow (constant offset)",
            UbRewrite::PointerOverflowAlgebra => "pointer overflow (algebraic)",
            UbRewrite::NullCheckElim => "null check elimination",
            UbRewrite::SignedOverflowConst => "signed overflow (constant)",
            UbRewrite::SignedOverflowRange => "signed overflow (value range)",
            UbRewrite::ShiftFold => "oversized shift",
            UbRewrite::AbsFold => "absolute value overflow",
        }
    }
}

/// A record of one UB-based optimization applied to the IR.
#[derive(Clone, Debug)]
pub struct OptEvent {
    pub rewrite: UbRewrite,
    pub origin: Origin,
    pub description: String,
}

/// Apply the enabled rewrites to a function. Returns one event per rewrite
/// applied (a check rewritten to a constant or a simpler expression).
pub fn run(func: &mut Function, enabled: &[UbRewrite]) -> Vec<OptEvent> {
    let mut events = Vec::new();
    if enabled.is_empty() {
        return events;
    }
    loop {
        let cfg = Cfg::compute(func);
        let dt = DomTree::compute(func, &cfg);
        let mut applied = false;
        for (block, inst) in func.all_insts() {
            if !cfg.is_reachable(block) {
                continue;
            }
            if let Some((replacement, rewrite, desc)) = try_rewrite(func, &dt, block, inst, enabled)
            {
                let origin = func.inst(inst).origin.clone();
                events.push(OptEvent {
                    rewrite,
                    origin,
                    description: desc,
                });
                match replacement {
                    Replacement::Value(op) => {
                        func.replace_all_uses(Operand::Inst(inst), op);
                        func.remove_inst(inst);
                    }
                    Replacement::NewCmp { pred, lhs, rhs } => {
                        func.inst_mut(inst).kind = InstKind::Cmp { pred, lhs, rhs };
                    }
                }
                applied = true;
                break; // recompute dominators after each change
            }
        }
        if !applied {
            break;
        }
    }
    events
}

enum Replacement {
    /// Replace the instruction's result with an operand and delete it.
    Value(Operand),
    /// Rewrite the comparison in place.
    NewCmp {
        pred: CmpPred,
        lhs: Operand,
        rhs: Operand,
    },
}

fn try_rewrite(
    func: &Function,
    dt: &DomTree,
    block: BlockId,
    inst: InstId,
    enabled: &[UbRewrite],
) -> Option<(Replacement, UbRewrite, String)> {
    let on = |r: UbRewrite| enabled.contains(&r);
    let InstKind::Cmp { pred, lhs, rhs } = func.inst(inst).kind.clone() else {
        return None;
    };

    // --- Pointer overflow: (p + off) < p ------------------------------------
    if matches!(pred, CmpPred::Ult | CmpPred::Uge) {
        if let Some((base, offset)) = as_ptr_add(func, lhs) {
            if rhs == base {
                let is_lt = pred == CmpPred::Ult;
                // Non-negative offset: the check folds to a constant.
                if on(UbRewrite::PointerOverflowConst) && offset_known_nonnegative(func, offset) {
                    return Some((
                        Replacement::Value(Operand::bool(!is_lt)),
                        UbRewrite::PointerOverflowConst,
                        "pointer overflow check folded to a constant".to_string(),
                    ));
                }
                // Signed offset: rewrite `p + x < p` into `x < 0`.
                if on(UbRewrite::PointerOverflowAlgebra) {
                    if let Some(x) = as_sext_source(func, offset) {
                        let zero = Operand::int(func.operand_type(x), 0);
                        let new_pred = if is_lt { CmpPred::Slt } else { CmpPred::Sge };
                        return Some((
                            Replacement::NewCmp {
                                pred: new_pred,
                                lhs: x,
                                rhs: zero,
                            },
                            UbRewrite::PointerOverflowAlgebra,
                            "pointer overflow check rewritten to a sign test".to_string(),
                        ));
                    }
                }
            }
        }
    }

    // --- Null check elimination ---------------------------------------------
    if on(UbRewrite::NullCheckElim) && matches!(pred, CmpPred::Eq | CmpPred::Ne) {
        let (ptr, _) = if rhs.is_const_value(0) && func.operand_type(lhs).is_ptr() {
            (lhs, rhs)
        } else if lhs.is_const_value(0) && func.operand_type(rhs).is_ptr() {
            (rhs, lhs)
        } else {
            (Operand::bool(false), Operand::bool(false))
        };
        if func.operand_type(ptr).is_ptr() {
            let nonnull = pointer_known_nonnull(func, dt, block, inst, ptr);
            if nonnull {
                let result = pred == CmpPred::Ne;
                return Some((
                    Replacement::Value(Operand::bool(result)),
                    UbRewrite::NullCheckElim,
                    "null pointer check folded to a constant".to_string(),
                ));
            }
        }
    }

    // --- Signed overflow: x + C < x ------------------------------------------
    if on(UbRewrite::SignedOverflowConst) && matches!(pred, CmpPred::Slt | CmpPred::Sge) {
        if let Some((x, c)) = as_add_with_const(func, lhs) {
            if rhs == x && c > 0 {
                let result = pred == CmpPred::Sge;
                return Some((
                    Replacement::Value(Operand::bool(result)),
                    UbRewrite::SignedOverflowConst,
                    format!("signed overflow check `x + {c} < x` folded"),
                ));
            }
        }
        // Symmetric form: x > x + C.
        if let Some((x, c)) = as_add_with_const(func, rhs) {
            if lhs == x && c > 0 && pred == CmpPred::Slt {
                // x < x + C is always true without overflow.
                return Some((
                    Replacement::Value(Operand::bool(true)),
                    UbRewrite::SignedOverflowConst,
                    format!("signed comparison `x < x + {c}` folded"),
                ));
            }
        }
    }

    // --- Signed overflow with value-range reasoning ---------------------------
    if on(UbRewrite::SignedOverflowRange) {
        // x known positive: x + C < 0 is false (C >= 0).
        if matches!(pred, CmpPred::Slt | CmpPred::Sge) && rhs.is_const_value(0) {
            if let Some((x, c)) = as_add_with_const(func, lhs) {
                if c >= 0 && known_positive(func, dt, block, x) {
                    let result = pred == CmpPred::Sge;
                    return Some((
                        Replacement::Value(Operand::bool(result)),
                        UbRewrite::SignedOverflowRange,
                        "signed overflow check on known-positive value folded".to_string(),
                    ));
                }
            }
            // k known negative: -k >= 0 is true (Figure 13).
            if let Some(k) = as_negation(func, lhs) {
                if known_negative(func, dt, block, k) {
                    let result = pred == CmpPred::Sge;
                    return Some((
                        Replacement::Value(Operand::bool(result)),
                        UbRewrite::SignedOverflowRange,
                        "negation of known-negative value assumed non-negative".to_string(),
                    ));
                }
            }
        }
    }

    // --- Oversized shift: (C << x) == 0 ----------------------------------------
    if on(UbRewrite::ShiftFold)
        && matches!(pred, CmpPred::Eq | CmpPred::Ne)
        && rhs.is_const_value(0)
    {
        if let Operand::Inst(id) = lhs {
            if let InstKind::Bin {
                op: BinOp::Shl,
                lhs: shl_lhs,
                ..
            } = func.inst(id).kind
            {
                if let Some(c) = shl_lhs.as_const() {
                    if c.bits != 0 {
                        let result = pred == CmpPred::Ne;
                        return Some((
                            Replacement::Value(Operand::bool(result)),
                            UbRewrite::ShiftFold,
                            "shift-based check folded assuming an in-range shift amount"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }

    // --- abs(x) < 0 ---------------------------------------------------------------
    if on(UbRewrite::AbsFold)
        && matches!(pred, CmpPred::Slt | CmpPred::Sge)
        && rhs.is_const_value(0)
    {
        if let Operand::Inst(id) = lhs {
            if let InstKind::Call { callee, .. } = &func.inst(id).kind {
                if callee == "abs" || callee == "labs" || callee == "llabs" {
                    let result = pred == CmpPred::Sge;
                    return Some((
                        Replacement::Value(Operand::bool(result)),
                        UbRewrite::AbsFold,
                        "abs() result assumed non-negative".to_string(),
                    ));
                }
            }
        }
    }

    None
}

/// If the operand is a `ptradd`, return its base pointer and offset.
fn as_ptr_add(func: &Function, op: Operand) -> Option<(Operand, Operand)> {
    if let Operand::Inst(id) = op {
        if let InstKind::PtrAdd { ptr, offset, .. } = func.inst(id).kind {
            return Some((ptr, offset));
        }
    }
    None
}

/// Whether an offset operand is provably non-negative: a non-negative
/// constant or a zero-extension (the lowering of an unsigned index).
fn offset_known_nonnegative(func: &Function, offset: Operand) -> bool {
    if let Some(c) = offset.as_const() {
        return c.as_signed() >= 0;
    }
    if let Operand::Inst(id) = offset {
        return matches!(func.inst(id).kind, InstKind::ZExt { .. });
    }
    false
}

/// If the operand is a sign-extension, return the original value; otherwise
/// return the operand itself if its type is a (signed-width) integer.
fn as_sext_source(func: &Function, offset: Operand) -> Option<Operand> {
    if let Operand::Inst(id) = offset {
        if let InstKind::SExt { value, .. } = func.inst(id).kind {
            return Some(value);
        }
    }
    if func.operand_type(offset).is_int() {
        return Some(offset);
    }
    None
}

/// If the operand is `add x, C`, return `(x, C)`.
fn as_add_with_const(func: &Function, op: Operand) -> Option<(Operand, i64)> {
    if let Operand::Inst(id) = op {
        if let InstKind::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        } = func.inst(id).kind
        {
            if let Some(c) = rhs.as_const() {
                return Some((lhs, c.as_signed()));
            }
            if let Some(c) = lhs.as_const() {
                return Some((rhs, c.as_signed()));
            }
        }
    }
    None
}

/// If the operand is `0 - k` (negation), return `k`.
fn as_negation(func: &Function, op: Operand) -> Option<Operand> {
    if let Operand::Inst(id) = op {
        if let InstKind::Bin {
            op: BinOp::Sub,
            lhs,
            rhs,
        } = func.inst(id).kind
        {
            if lhs.is_const_value(0) {
                return Some(rhs);
            }
        }
    }
    None
}

/// Whether a pointer is known non-null at the given program point:
/// either a dominating load/store dereferences it, or it is itself the
/// result of pointer arithmetic on some object.
fn pointer_known_nonnull(
    func: &Function,
    dt: &DomTree,
    block: BlockId,
    inst: InstId,
    ptr: Operand,
) -> bool {
    // Pointer arithmetic results cannot be null without pointer overflow.
    if let Operand::Inst(id) = ptr {
        if matches!(func.inst(id).kind, InstKind::PtrAdd { .. })
            || matches!(func.inst(id).kind, InstKind::Alloca { .. })
        {
            return true;
        }
    }
    // A dominating dereference of the same pointer implies it is non-null.
    let index = match func.position_in_block(inst) {
        Some((b, i)) if b == block => i,
        _ => return false,
    };
    for d in dt.dominating_insts(func, block, index) {
        if d == inst {
            continue;
        }
        match &func.inst(d).kind {
            InstKind::Load { ptr: p, .. } | InstKind::Store { ptr: p, .. } if *p == ptr => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Whether a dominating branch constrains `x` to be strictly positive (or
/// non-negative combined with a non-zero constant offset, which is all the
/// §2.2 example needs).
fn known_positive(func: &Function, dt: &DomTree, block: BlockId, x: Operand) -> bool {
    branch_implies(func, dt, block, x, |pred, c, on_true| {
        match (pred, on_true) {
            (CmpPred::Sgt, true) => c >= 0,  // x > c, c >= 0
            (CmpPred::Sge, true) => c >= 1,  // x >= c, c >= 1
            (CmpPred::Slt, false) => c <= 0, // !(x < c), c <= 0 -> x >= 0 (weak, accept c<=0)
            (CmpPred::Sle, false) => c >= 0, // !(x <= c) -> x > c
            _ => false,
        }
    })
}

/// Whether a dominating branch constrains `x` to be strictly negative.
fn known_negative(func: &Function, dt: &DomTree, block: BlockId, x: Operand) -> bool {
    branch_implies(func, dt, block, x, |pred, c, on_true| {
        match (pred, on_true) {
            (CmpPred::Slt, true) => c <= 0,  // x < c, c <= 0
            (CmpPred::Sle, true) => c <= -1, // x <= c, c <= -1
            (CmpPred::Sge, false) => c <= 0, // !(x >= c), c <= 0
            (CmpPred::Sgt, false) => c <= -1,
            _ => false,
        }
    })
}

/// Walk the dominating conditional branches of `block`; return true if any
/// branch comparing `x` against a constant implies the property decided by
/// `check(pred, constant, branch_taken_on_true_edge)`.
fn branch_implies(
    func: &Function,
    dt: &DomTree,
    block: BlockId,
    x: Operand,
    check: impl Fn(CmpPred, i64, bool) -> bool,
) -> bool {
    for d in dt.dominators(block) {
        if d == block {
            continue;
        }
        let stack_ir::Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } = func.block(d).terminator
        else {
            continue;
        };
        if then_bb == else_bb {
            continue;
        }
        let Operand::Inst(cid) = cond else { continue };
        let InstKind::Cmp { pred, lhs, rhs } = func.inst(cid).kind else {
            continue;
        };
        // Normalize to (x pred' const).
        let (pred, constant) = if lhs == x {
            match rhs.as_const() {
                Some(c) => (pred, c.as_signed()),
                None => continue,
            }
        } else if rhs == x {
            match lhs.as_const() {
                Some(c) => (pred.swapped(), c.as_signed()),
                None => continue,
            }
        } else {
            continue;
        };
        // Which edge leads (dominator-wise) to our block?
        let on_true = dt.dominates(then_bb, block) && !dt.dominates(else_bb, block);
        let on_false = dt.dominates(else_bb, block) && !dt.dominates(then_bb, block);
        if on_true && check(pred, constant, true) {
            return true;
        }
        if on_false && check(pred, constant, false) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dce, mem2reg, simplify, simplifycfg};
    use stack_ir::{print_function, verify_function, Module};
    use stack_minic::compile;

    /// Compile, promote to SSA, apply the given rewrites, and clean up.
    fn optimize(src: &str, fname: &str, rewrites: &[UbRewrite]) -> (Function, Vec<OptEvent>) {
        let mut m: Module = compile(src, "t.c").unwrap();
        let f = m.function_mut(fname).unwrap();
        mem2reg::run(f);
        simplify::run(f);
        let events = run(f, rewrites);
        simplify::run(f);
        simplifycfg::run(f);
        dce::run(f);
        verify_function(f).unwrap_or_else(|e| panic!("{e:?}\n{}", print_function(f)));
        (f.clone(), events)
    }

    const EX1: &str = "int f(char *p) { if (p + 100 < p) return 1; return 0; }";
    const EX2: &str = "int f(int *p) { int v = *p; if (!p) return 1; return v; }";
    const EX3: &str = "int f(int x) { if (x + 100 < x) return 1; return 0; }";
    const EX4: &str = "int f(int x) { if (x > 0) { if (x + 100 < 0) return 1; } return 0; }";
    const EX5: &str = "int f(int x) { if (!(1 << x)) return 1; return 0; }";
    const EX6: &str = "int f(int x) { if (abs(x) < 0) return 1; return 0; }";

    #[test]
    fn pointer_overflow_constant_folds_check() {
        let (f, events) = optimize(EX1, "f", &[UbRewrite::PointerOverflowConst]);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rewrite, UbRewrite::PointerOverflowConst);
        // The `return 1` branch is gone.
        let text = print_function(&f);
        assert!(!text.contains("ret 1"), "{text}");
        // Without the rewrite the check stays.
        let (f2, events2) = optimize(EX1, "f", &[]);
        assert!(events2.is_empty());
        assert!(print_function(&f2).contains("icmp"));
    }

    #[test]
    fn null_check_after_dereference_folds() {
        let (f, events) = optimize(EX2, "f", &[UbRewrite::NullCheckElim]);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rewrite, UbRewrite::NullCheckElim);
        let text = print_function(&f);
        assert!(!text.contains("ret 1"), "{text}");
        // Without a prior dereference the check must stay.
        let (_, events2) = optimize(
            "int f(int *p) { if (!p) return 1; return 0; }",
            "f",
            &[UbRewrite::NullCheckElim],
        );
        assert!(events2.is_empty());
    }

    #[test]
    fn signed_overflow_constant_folds() {
        let (f, events) = optimize(EX3, "f", &[UbRewrite::SignedOverflowConst]);
        assert_eq!(events.len(), 1);
        assert!(!print_function(&f).contains("ret 1"));
        // The unsigned variant must NOT fold (wraparound is defined).
        let (_, events2) = optimize(
            "int f(unsigned int x) { if (x + 100 < x) return 1; return 0; }",
            "f",
            UbRewrite::all(),
        );
        assert!(
            events2
                .iter()
                .all(|e| e.rewrite != UbRewrite::SignedOverflowConst),
            "unsigned wraparound check must not be folded: {events2:?}"
        );
    }

    #[test]
    fn value_range_reasoning_folds_positive_case() {
        let (f, events) = optimize(EX4, "f", &[UbRewrite::SignedOverflowRange]);
        assert_eq!(events.len(), 1, "{}", print_function(&f));
        assert_eq!(events[0].rewrite, UbRewrite::SignedOverflowRange);
        // Without the range rewrite, nothing happens.
        let (_, events2) = optimize(EX4, "f", &[UbRewrite::SignedOverflowConst]);
        assert!(events2.is_empty());
    }

    #[test]
    fn plan9_negation_check_folds_with_range_reasoning() {
        let src = "int f(int k) { if (k < 0) { if (-k >= 0) return 1; return 2; } return 0; }";
        let (f, events) = optimize(src, "f", &[UbRewrite::SignedOverflowRange]);
        assert_eq!(events.len(), 1, "{}", print_function(&f));
        // After folding, the `return 2` path (the INT_MIN handler) is gone.
        assert!(!print_function(&f).contains("ret 2"));
    }

    #[test]
    fn shift_check_folds() {
        let (f, events) = optimize(EX5, "f", &[UbRewrite::ShiftFold]);
        assert_eq!(events.len(), 1);
        assert!(!print_function(&f).contains("ret 1"));
    }

    #[test]
    fn abs_check_folds() {
        let (f, events) = optimize(EX6, "f", &[UbRewrite::AbsFold]);
        assert_eq!(events.len(), 1);
        assert!(!print_function(&f).contains("ret 1"));
    }

    #[test]
    fn ffmpeg_bounds_check_rewritten_algebraically() {
        let src = "int f(char *data, char *data_end, int size) {\n\
                     if (data + size >= data_end || data + size < data) return -1;\n\
                     return 0;\n\
                   }";
        let (f, events) = optimize(src, "f", &[UbRewrite::PointerOverflowAlgebra]);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rewrite, UbRewrite::PointerOverflowAlgebra);
        // The rewritten check compares size against 0 instead of the pointer.
        let text = print_function(&f);
        assert!(
            text.contains("icmp slt %arg2, 0") || text.contains("icmp sge %arg2, 0"),
            "{text}"
        );
    }

    #[test]
    fn stable_code_is_untouched_by_all_rewrites() {
        let src =
            "int f(int x, int y) { if (x < y) return 1; if (y != 0) return x / y; return 0; }";
        let (_, events) = optimize(src, "f", UbRewrite::all());
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn strchr_plus_one_null_check_folds_as_ptr_arith() {
        // Figure 11: nodep = strchr(buf, '.') + 1; if (!nodep) ...
        let src = "int parse(char *buf) {\n\
                     char *nodep = strchr(buf, '.') + 1;\n\
                     if (!nodep) return -5;\n\
                     return 0;\n\
                   }";
        let (f, events) = optimize(src, "parse", &[UbRewrite::NullCheckElim]);
        assert_eq!(events.len(), 1, "{}", print_function(&f));
        assert!(!print_function(&f).contains("ret -5"));
    }
}
