//! Constant folding and algebraic instruction simplification.
//!
//! These are the "ordinary" optimizations every compiler performs without
//! appealing to undefined behavior: folding operations on constants and
//! applying identities like `x + 0 = x`. The UB-exploiting rewrites live in
//! [`crate::ub_rewrites`] so profiles can enable them selectively.

use stack_ir::{BinOp, CmpPred, Constant, Function, InstKind, Operand, Type};

/// Mask a raw value to the given bit width.
fn mask_to_width(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Run constant folding and simplification to a fixed point. Returns the
/// number of instructions simplified away.
pub fn run(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut changed = 0;
        for (_, i) in func.all_insts() {
            let inst = func.inst(i).clone();
            if let Some(replacement) = simplify_inst(func, &inst.kind, inst.ty) {
                func.replace_all_uses(Operand::Inst(i), replacement);
                func.remove_inst(i);
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
        total += changed;
    }
    total
}

/// Try to simplify one instruction into an existing operand or constant.
fn simplify_inst(func: &Function, kind: &InstKind, ty: Type) -> Option<Operand> {
    match kind {
        InstKind::Bin { op, lhs, rhs } => simplify_bin(*op, *lhs, *rhs, ty),
        InstKind::Cmp { pred, lhs, rhs } => simplify_cmp(func, *pred, *lhs, *rhs),
        InstKind::Select { cond, then, els } => {
            if let Some(c) = cond.as_const() {
                Some(if c.bits != 0 { *then } else { *els })
            } else if then == els {
                Some(*then)
            } else {
                None
            }
        }
        InstKind::ZExt { value, to } => value.as_const().map(|c| {
            Operand::Const(Constant {
                ty: *to,
                bits: c.bits,
            })
        }),
        InstKind::SExt { value, to } => value.as_const().map(|c| Operand::int(*to, c.as_signed())),
        InstKind::Trunc { value, to } => value.as_const().map(|c| {
            Operand::Const(Constant {
                ty: *to,
                bits: mask_to_width(c.bits, to.bit_width()),
            })
        }),
        InstKind::PtrAdd { ptr, offset, .. } if offset.is_const_value(0) => Some(*ptr),
        _ => None,
    }
}

fn simplify_bin(op: BinOp, lhs: Operand, rhs: Operand, ty: Type) -> Option<Operand> {
    let width = ty.bit_width();
    // Constant folding.
    if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
        let (x, y) = (a.bits, b.bits);
        let (sx, sy) = (a.as_signed(), b.as_signed());
        let folded: Option<u64> = match op {
            BinOp::Add => Some(x.wrapping_add(y)),
            BinOp::Sub => Some(x.wrapping_sub(y)),
            BinOp::Mul => Some(x.wrapping_mul(y)),
            BinOp::UDiv => x.checked_div(y),
            BinOp::SDiv => {
                if sy == 0 {
                    None
                } else {
                    Some(sx.wrapping_div(sy) as u64)
                }
            }
            BinOp::URem => x.checked_rem(y),
            BinOp::SRem => {
                if sy == 0 {
                    None
                } else {
                    Some(sx.wrapping_rem(sy) as u64)
                }
            }
            BinOp::And => Some(x & y),
            BinOp::Or => Some(x | y),
            BinOp::Xor => Some(x ^ y),
            BinOp::Shl => {
                if y >= u64::from(width) {
                    None // oversized shift: left for the UB machinery
                } else {
                    Some(x << y)
                }
            }
            BinOp::LShr => {
                if y >= u64::from(width) {
                    None
                } else {
                    Some(mask_to_width(x, width) >> y)
                }
            }
            BinOp::AShr => {
                if y >= u64::from(width) {
                    None
                } else {
                    Some((sx >> y) as u64)
                }
            }
        };
        if let Some(v) = folded {
            return Some(Operand::Const(Constant {
                ty,
                bits: mask_to_width(v, width),
            }));
        }
    }
    // Algebraic identities.
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::LShr | BinOp::AShr
            if rhs.is_const_value(0) =>
        {
            Some(lhs)
        }
        BinOp::Add if lhs.is_const_value(0) => Some(rhs),
        BinOp::Sub if rhs.is_const_value(0) => Some(lhs),
        BinOp::Sub if lhs == rhs => Some(Operand::int(ty, 0)),
        BinOp::Mul if rhs.is_const_value(1) => Some(lhs),
        BinOp::Mul if lhs.is_const_value(1) => Some(rhs),
        BinOp::Mul if rhs.is_const_value(0) || lhs.is_const_value(0) => Some(Operand::int(ty, 0)),
        BinOp::And if lhs == rhs => Some(lhs),
        BinOp::And if rhs.is_const_value(0) || lhs.is_const_value(0) => Some(Operand::int(ty, 0)),
        BinOp::Or if lhs == rhs => Some(lhs),
        BinOp::Xor if lhs == rhs => Some(Operand::int(ty, 0)),
        BinOp::UDiv | BinOp::SDiv if rhs.is_const_value(1) => Some(lhs),
        _ => None,
    }
}

fn simplify_cmp(func: &Function, pred: CmpPred, lhs: Operand, rhs: Operand) -> Option<Operand> {
    if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
        let result = match pred {
            CmpPred::Eq => a.bits == b.bits,
            CmpPred::Ne => a.bits != b.bits,
            CmpPred::Ult => a.bits < b.bits,
            CmpPred::Ule => a.bits <= b.bits,
            CmpPred::Ugt => a.bits > b.bits,
            CmpPred::Uge => a.bits >= b.bits,
            CmpPred::Slt => a.as_signed() < b.as_signed(),
            CmpPred::Sle => a.as_signed() <= b.as_signed(),
            CmpPred::Sgt => a.as_signed() > b.as_signed(),
            CmpPred::Sge => a.as_signed() >= b.as_signed(),
        };
        return Some(Operand::bool(result));
    }
    if lhs == rhs {
        let result = matches!(
            pred,
            CmpPred::Eq | CmpPred::Ule | CmpPred::Uge | CmpPred::Sle | CmpPred::Sge
        );
        return Some(Operand::bool(result));
    }
    let _ = func;
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_ir::{print_function, FunctionBuilder};

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = FunctionBuilder::with_params("f", &[], Type::I32);
        let a = b.add(Operand::int(Type::I32, 40), Operand::int(Type::I32, 2));
        let m = b.mul(a, Operand::int(Type::I32, 3));
        b.ret(m);
        let mut f = b.finish();
        let n = run(&mut f);
        assert_eq!(n, 2);
        let text = print_function(&f);
        assert!(text.contains("ret 126"), "{text}");
    }

    #[test]
    fn applies_identities() {
        let mut b = FunctionBuilder::with_params("f", &[("x", Type::I32)], Type::I32);
        let x = b.param(0);
        let a = b.add(x, Operand::int(Type::I32, 0));
        let s = b.sub(a, a);
        let m = b.mul(s, Operand::int(Type::I32, 7));
        b.ret(m);
        let mut f = b.finish();
        run(&mut f);
        let text = print_function(&f);
        assert!(text.contains("ret 0"), "{text}");
        assert_eq!(f.num_live_insts(), 0);
    }

    #[test]
    fn folds_comparisons_and_selects() {
        let mut b = FunctionBuilder::with_params("f", &[("x", Type::I32)], Type::I32);
        let x = b.param(0);
        let c = b.cmp(
            CmpPred::Slt,
            Operand::int(Type::I32, -5),
            Operand::int(Type::I32, 3),
        );
        let s = b.select(c, x, Operand::int(Type::I32, 9));
        b.ret(s);
        let mut f = b.finish();
        run(&mut f);
        let text = print_function(&f);
        assert!(text.contains("ret %arg0"), "{text}");
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut b = FunctionBuilder::with_params("f", &[], Type::I32);
        let d = b.sdiv(Operand::int(Type::I32, 10), Operand::int(Type::I32, 0));
        b.ret(d);
        let mut f = b.finish();
        let n = run(&mut f);
        assert_eq!(n, 0);
        assert!(print_function(&f).contains("sdiv"));
    }

    #[test]
    fn folds_extensions_with_sign() {
        let mut b = FunctionBuilder::with_params("f", &[], Type::I64);
        let z = b.zext(Operand::int(Type::I32, -1), Type::I64);
        let s = b.sext(Operand::int(Type::I32, -1), Type::I64);
        let diff = b.sub(s, z);
        b.ret(diff);
        let mut f = b.finish();
        run(&mut f);
        let text = print_function(&f);
        // sext(-1) - zext(-1) = -1 - 0xFFFFFFFF = -(2^32)
        assert!(text.contains(&format!("ret {}", -(1i64 << 32))), "{text}");
    }

    #[test]
    fn same_operand_comparison_folds() {
        let mut b = FunctionBuilder::with_params("f", &[("x", Type::I32)], Type::Bool);
        let x = b.param(0);
        let c = b.cmp(CmpPred::Ult, x, x);
        b.ret(c);
        let mut f = b.finish();
        run(&mut f);
        assert!(print_function(&f).contains("ret false"));
    }
}
