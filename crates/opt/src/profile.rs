//! Compiler profiles: which UB-exploiting rewrite each surveyed compiler
//! performs, and at which optimization level it first kicks in.
//!
//! The paper's Figure 4 surveys 12 compilers (16 compiler/version rows) on
//! six unstable-code examples and records the lowest `-On` at which each
//! compiler discards the check. A [`CompilerProfile`] encodes exactly that
//! capability table; the optimizer pipeline then *performs* the enabled
//! rewrites on the IR, so regenerating Figure 4 exercises the real
//! optimization code rather than reading the table back.

use crate::ub_rewrites::UbRewrite;

/// A compiler (or compiler version) and the optimization levels at which it
/// starts applying each UB-exploiting rewrite.
#[derive(Clone, Debug)]
pub struct CompilerProfile {
    /// Display name, e.g. `gcc-4.8.1`.
    pub name: &'static str,
    /// Minimum `-O` level at which each rewrite is enabled (`None`: never).
    thresholds: Vec<(UbRewrite, Option<u8>)>,
}

impl CompilerProfile {
    /// Construct a profile from per-rewrite thresholds.
    pub fn new(name: &'static str, thresholds: Vec<(UbRewrite, Option<u8>)>) -> CompilerProfile {
        CompilerProfile { name, thresholds }
    }

    /// The rewrites this compiler performs at the given optimization level.
    pub fn enabled_rewrites(&self, level: u8) -> Vec<UbRewrite> {
        self.thresholds
            .iter()
            .filter_map(|(r, t)| match t {
                Some(min) if *min <= level => Some(*r),
                _ => None,
            })
            .collect()
    }

    /// The lowest level at which a given rewrite is enabled.
    pub fn min_level(&self, rewrite: UbRewrite) -> Option<u8> {
        self.thresholds
            .iter()
            .find(|(r, _)| *r == rewrite)
            .and_then(|(_, t)| *t)
    }

    /// Highest optimization level modeled.
    pub const MAX_LEVEL: u8 = 3;
}

/// Shorthand constructor for the survey table: one positional argument per
/// Figure 4 column, so the rows below read like the paper's table.
#[allow(clippy::too_many_arguments)]
fn profile(
    name: &'static str,
    ptr_const: Option<u8>,
    null: Option<u8>,
    signed_const: Option<u8>,
    signed_range: Option<u8>,
    shift: Option<u8>,
    abs: Option<u8>,
    ptr_algebra: Option<u8>,
) -> CompilerProfile {
    CompilerProfile::new(
        name,
        vec![
            (UbRewrite::PointerOverflowConst, ptr_const),
            (UbRewrite::NullCheckElim, null),
            (UbRewrite::SignedOverflowConst, signed_const),
            (UbRewrite::SignedOverflowRange, signed_range),
            (UbRewrite::ShiftFold, shift),
            (UbRewrite::AbsFold, abs),
            (UbRewrite::PointerOverflowAlgebra, ptr_algebra),
        ],
    )
}

/// The sixteen compiler rows of Figure 4, in the paper's order. The last
/// column (`PointerOverflowAlgebra`) reflects §6.2.2: both gcc and clang
/// rewrite `data + x < data` into `x < 0`.
pub fn survey_compilers() -> Vec<CompilerProfile> {
    vec![
        //        name               p+100<p   *p;!p    x+100<x  x⁺+100<0  !(1<<x)  abs<0    data+x<data
        profile("gcc-2.95.3", None, None, Some(1), None, None, None, None),
        profile("gcc-3.4.6", None, Some(2), Some(1), None, None, None, None),
        profile(
            "gcc-4.2.1",
            Some(0),
            None,
            Some(2),
            None,
            None,
            Some(2),
            None,
        ),
        profile(
            "gcc-4.8.1",
            Some(2),
            Some(2),
            Some(2),
            Some(2),
            None,
            Some(2),
            Some(2),
        ),
        profile("clang-1.0", Some(1), None, None, None, None, None, None),
        profile(
            "clang-3.3",
            Some(1),
            None,
            Some(1),
            None,
            Some(1),
            None,
            Some(1),
        ),
        profile("aCC-6.25", None, None, None, None, None, Some(3), None),
        profile("armcc-5.02", None, None, Some(2), None, None, None, None),
        profile(
            "icc-14.0.0",
            None,
            Some(2),
            Some(1),
            Some(2),
            None,
            None,
            None,
        ),
        profile("msvc-11.0", None, Some(1), None, None, None, None, None),
        profile(
            "open64-4.5.2",
            Some(1),
            None,
            Some(2),
            None,
            None,
            Some(2),
            None,
        ),
        profile(
            "pathcc-1.0.0",
            Some(1),
            None,
            Some(2),
            None,
            None,
            Some(2),
            None,
        ),
        profile("suncc-5.12", None, Some(3), None, None, None, None, None),
        profile(
            "ti-7.4.2",
            Some(0),
            None,
            Some(0),
            Some(2),
            None,
            None,
            None,
        ),
        profile(
            "windriver-5.9.2",
            None,
            None,
            Some(0),
            None,
            None,
            None,
            None,
        ),
        profile("xlc-12.1", Some(3), None, None, None, None, None, None),
    ]
}

/// A profile with every rewrite enabled at `-O0`: the "most aggressive
/// imaginable compiler" STACK itself mimics (§3.2).
pub fn most_aggressive() -> CompilerProfile {
    CompilerProfile::new(
        "stack-aggressive",
        UbRewrite::all().iter().map(|r| (*r, Some(0))).collect(),
    )
}

/// Flags modeling gcc's opt-out options (§7): each returns a copy of the
/// profile with the corresponding rewrites disabled.
pub fn with_fwrapv(profile: &CompilerProfile) -> CompilerProfile {
    disable(
        profile,
        &[
            UbRewrite::SignedOverflowConst,
            UbRewrite::SignedOverflowRange,
        ],
        "-fwrapv",
    )
}

/// `-fno-strict-overflow`: signed *and* pointer arithmetic wrap.
pub fn with_fno_strict_overflow(profile: &CompilerProfile) -> CompilerProfile {
    disable(
        profile,
        &[
            UbRewrite::SignedOverflowConst,
            UbRewrite::SignedOverflowRange,
            UbRewrite::PointerOverflowConst,
            UbRewrite::PointerOverflowAlgebra,
        ],
        "-fno-strict-overflow",
    )
}

/// `-fno-delete-null-pointer-checks`.
pub fn with_fno_delete_null_pointer_checks(profile: &CompilerProfile) -> CompilerProfile {
    disable(
        profile,
        &[UbRewrite::NullCheckElim],
        "-fno-delete-null-pointer-checks",
    )
}

fn disable(
    profile: &CompilerProfile,
    rewrites: &[UbRewrite],
    _flag: &'static str,
) -> CompilerProfile {
    CompilerProfile {
        name: profile.name,
        thresholds: profile
            .thresholds
            .iter()
            .map(|(r, t)| {
                if rewrites.contains(r) {
                    (*r, None)
                } else {
                    (*r, *t)
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_sixteen_rows() {
        let profiles = survey_compilers();
        assert_eq!(profiles.len(), 16);
        let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
        assert!(names.contains(&"gcc-2.95.3"));
        assert!(names.contains(&"gcc-4.8.1"));
        assert!(names.contains(&"clang-3.3"));
        assert!(names.contains(&"xlc-12.1"));
    }

    #[test]
    fn thresholds_respect_levels() {
        let profiles = survey_compilers();
        let gcc48 = profiles.iter().find(|p| p.name == "gcc-4.8.1").unwrap();
        assert!(gcc48.enabled_rewrites(0).is_empty());
        assert!(gcc48
            .enabled_rewrites(2)
            .contains(&UbRewrite::PointerOverflowConst));
        assert_eq!(gcc48.min_level(UbRewrite::ShiftFold), None);

        let gcc295 = profiles.iter().find(|p| p.name == "gcc-2.95.3").unwrap();
        assert_eq!(
            gcc295.enabled_rewrites(3),
            vec![UbRewrite::SignedOverflowConst]
        );

        let ti = profiles.iter().find(|p| p.name == "ti-7.4.2").unwrap();
        assert!(ti
            .enabled_rewrites(0)
            .contains(&UbRewrite::PointerOverflowConst));
        assert!(ti
            .enabled_rewrites(0)
            .contains(&UbRewrite::SignedOverflowConst));
    }

    #[test]
    fn aggressive_profile_enables_everything() {
        let p = most_aggressive();
        assert_eq!(p.enabled_rewrites(0).len(), UbRewrite::all().len());
    }

    #[test]
    fn opt_out_flags_disable_rewrites() {
        let profiles = survey_compilers();
        let gcc48 = profiles.iter().find(|p| p.name == "gcc-4.8.1").unwrap();
        let wrapv = with_fwrapv(gcc48);
        assert_eq!(wrapv.min_level(UbRewrite::SignedOverflowConst), None);
        assert!(wrapv.min_level(UbRewrite::PointerOverflowConst).is_some());
        let nso = with_fno_strict_overflow(gcc48);
        assert_eq!(nso.min_level(UbRewrite::PointerOverflowConst), None);
        let nonull = with_fno_delete_null_pointer_checks(gcc48);
        assert_eq!(nonull.min_level(UbRewrite::NullCheckElim), None);
        assert!(nonull.min_level(UbRewrite::SignedOverflowConst).is_some());
    }
}
