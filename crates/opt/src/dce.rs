//! Dead code elimination: removes instructions whose results are unused and
//! which have no side effects.

use stack_ir::{Function, InstId, Operand};
use std::collections::HashSet;

/// Run DCE on a function. Returns the number of instructions removed.
pub fn run(func: &mut Function) -> usize {
    run_impl(func, false)
}

/// DCE variant that keeps memory loads even when their results are unused.
/// The checker's analysis pipeline uses this: dereferences are sources of
/// undefined-behavior conditions (null pointer dereference, Figure 3) and
/// must stay visible to the UB-condition insertion stage.
pub fn run_keeping_loads(func: &mut Function) -> usize {
    run_impl(func, true)
}

fn run_impl(func: &mut Function, keep_loads: bool) -> usize {
    let mut removed_total = 0;
    loop {
        // Collect all used instruction results.
        let mut used: HashSet<InstId> = HashSet::new();
        for (_, i) in func.all_insts() {
            for op in func.inst(i).kind.operands() {
                if let Operand::Inst(id) = op {
                    used.insert(id);
                }
            }
        }
        for b in func.block_ids() {
            for op in func.block(b).terminator.operands() {
                if let Operand::Inst(id) = op {
                    used.insert(id);
                }
            }
        }
        // Remove unused, side-effect-free instructions.
        let mut to_remove: Vec<InstId> = Vec::new();
        for (_, i) in func.all_insts() {
            let inst = func.inst(i);
            if keep_loads && inst.kind.is_memory_access() {
                continue;
            }
            if !used.contains(&i) && !inst.kind.has_side_effects() {
                to_remove.push(i);
            }
        }
        if to_remove.is_empty() {
            break;
        }
        removed_total += to_remove.len();
        for i in to_remove {
            func.remove_inst(i);
        }
    }
    removed_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_ir::{CmpPred, FunctionBuilder, Operand, Type};

    #[test]
    fn removes_unused_chains() {
        let mut b = FunctionBuilder::with_params("f", &[("x", Type::I32)], Type::I32);
        let x = b.param(0);
        let dead1 = b.add(x, Operand::int(Type::I32, 1));
        let _dead2 = b.mul(dead1, Operand::int(Type::I32, 2));
        let live = b.add(x, Operand::int(Type::I32, 5));
        b.ret(live);
        let mut f = b.finish();
        assert_eq!(f.num_live_insts(), 3);
        let removed = run(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.num_live_insts(), 1);
    }

    #[test]
    fn keeps_side_effects_and_terminator_uses() {
        let mut b = FunctionBuilder::with_params("f", &[("p", Type::Ptr)], Type::Void);
        let p = b.param(0);
        b.store(p, Operand::int(Type::I32, 1)); // side effect, unused result
        let cmp = b.cmp(CmpPred::Eq, p, Operand::null());
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.cond_br(cmp, t, e);
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let mut f = b.finish();
        let removed = run(&mut f);
        assert_eq!(removed, 0);
        assert_eq!(f.num_live_insts(), 2);
    }

    #[test]
    fn bug_on_markers_are_preserved() {
        let mut b = FunctionBuilder::with_params("f", &[], Type::Void);
        b.func_mut().insert_bug_on(
            stack_ir::BlockId(0),
            0,
            Operand::bool(false),
            "division by zero",
            stack_ir::Origin::unknown(),
        );
        b.ret_void();
        let mut f = b.finish();
        run(&mut f);
        assert!(f.has_bug_on());
    }
}
