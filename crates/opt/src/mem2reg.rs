//! Promotion of stack slots to SSA values (the classic `mem2reg` pass).
//!
//! The frontend gives every local variable an `alloca` with explicit loads
//! and stores. This pass promotes the allocas whose address never escapes
//! (no pointer arithmetic, no calls taking the address, no stores *of* the
//! address) into SSA form by placing phi nodes at iterated dominance
//! frontiers and renaming along the dominator tree. The checker depends on
//! this: the solver reasons about SSA values, not memory.

use stack_ir::{BlockId, Cfg, DomTree, Function, Inst, InstId, InstKind, Operand, Origin, Type};
use std::collections::{HashMap, HashSet};

/// Run mem2reg on a function. Returns the number of promoted allocas.
pub fn run(func: &mut Function) -> usize {
    let promotable = find_promotable(func);
    if promotable.is_empty() {
        return 0;
    }
    let cfg = Cfg::compute(func);
    let dt = DomTree::compute(func, &cfg);
    let frontiers = dominance_frontiers(func, &cfg, &dt);

    let mut count = 0;
    for (alloca, ty) in &promotable {
        promote_one(func, &cfg, &dt, &frontiers, *alloca, *ty);
        count += 1;
    }
    count
}

/// Find allocas that can be promoted: single-element slots whose only uses
/// are direct loads and stores of the slot pointer.
fn find_promotable(func: &Function) -> Vec<(InstId, Type)> {
    let mut candidates: HashMap<InstId, Type> = HashMap::new();
    for (_, i) in func.all_insts() {
        if let InstKind::Alloca { elem_ty, count } = &func.inst(i).kind {
            if *count == 1 && elem_ty.is_value() {
                candidates.insert(i, *elem_ty);
            }
        }
    }
    // Disqualify allocas whose pointer escapes.
    for (_, i) in func.all_insts() {
        let inst = func.inst(i);
        match &inst.kind {
            InstKind::Load { .. } => {}
            InstKind::Store { ptr, value } => {
                // Storing the address itself disqualifies it.
                if let Operand::Inst(v) = value {
                    candidates.remove(v);
                }
                let _ = ptr;
            }
            other => {
                for op in other.operands() {
                    if let Operand::Inst(id) = op {
                        candidates.remove(&id);
                    }
                }
            }
        }
    }
    // Terminator uses (should not happen for pointers, but be safe).
    for b in func.block_ids() {
        for op in func.block(b).terminator.operands() {
            if let Operand::Inst(id) = op {
                candidates.remove(&id);
            }
        }
    }
    let mut out: Vec<(InstId, Type)> = candidates.into_iter().collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

/// Compute dominance frontiers for all reachable blocks.
fn dominance_frontiers(func: &Function, cfg: &Cfg, dt: &DomTree) -> HashMap<BlockId, Vec<BlockId>> {
    let mut df: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for b in cfg.reverse_post_order() {
        let preds = cfg.preds(*b);
        if preds.len() < 2 {
            continue;
        }
        let idom_b = match dt.idom(*b) {
            Some(d) => d,
            None => continue,
        };
        for &p in preds {
            if !cfg.is_reachable(p) {
                continue;
            }
            let mut runner = p;
            while runner != idom_b {
                df.entry(runner).or_default().push(*b);
                runner = match dt.idom(runner) {
                    Some(d) => d,
                    None => break,
                };
            }
        }
    }
    let _ = func;
    df
}

/// Promote a single alloca to SSA.
fn promote_one(
    func: &mut Function,
    cfg: &Cfg,
    dt: &DomTree,
    frontiers: &HashMap<BlockId, Vec<BlockId>>,
    alloca: InstId,
    ty: Type,
) {
    let slot = Operand::Inst(alloca);

    // Blocks containing a store to the slot.
    let mut def_blocks: Vec<BlockId> = Vec::new();
    for (b, i) in func.all_insts() {
        if let InstKind::Store { ptr, .. } = &func.inst(i).kind {
            if *ptr == slot && !def_blocks.contains(&b) {
                def_blocks.push(b);
            }
        }
    }

    // Iterated dominance frontier: where phis are needed.
    let mut phi_blocks: HashSet<BlockId> = HashSet::new();
    let mut work: Vec<BlockId> = def_blocks.clone();
    while let Some(b) = work.pop() {
        for &d in frontiers.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
            if phi_blocks.insert(d) {
                work.push(d);
            }
        }
    }

    // Insert empty phis (operands filled during renaming).
    let mut phi_of_block: HashMap<BlockId, InstId> = HashMap::new();
    for &b in &phi_blocks {
        if !cfg.is_reachable(b) {
            continue;
        }
        let phi = func.insert_inst(
            b,
            0,
            Inst::new(InstKind::Phi { incomings: vec![] }, ty, Origin::unknown()),
        );
        phi_of_block.insert(b, phi);
    }

    // Rename: walk the dominator tree, tracking the reaching definition.
    let children = dom_children(func, dt);
    let undef = Operand::int(ty, 0);
    let mut replacements: Vec<(InstId, Operand)> = Vec::new(); // load -> value
    let mut phi_incomings: HashMap<InstId, Vec<(BlockId, Operand)>> = HashMap::new();
    let mut removals: Vec<InstId> = Vec::new();

    // Stack of (block, reaching value at block entry).
    let mut stack: Vec<(BlockId, Operand)> = vec![(func.entry(), undef)];
    let mut visited: HashSet<BlockId> = HashSet::new();
    while let Some((b, mut current)) = stack.pop() {
        if !visited.insert(b) {
            continue;
        }
        if let Some(&phi) = phi_of_block.get(&b) {
            current = Operand::Inst(phi);
        }
        for &i in &func.block(b).insts.clone() {
            match &func.inst(i).kind {
                InstKind::Load { ptr, .. } if *ptr == slot => {
                    replacements.push((i, current));
                    removals.push(i);
                }
                InstKind::Store { ptr, value } if *ptr == slot => {
                    current = *value;
                    removals.push(i);
                }
                _ => {}
            }
        }
        // Record the value flowing along each CFG edge into successor phis.
        for &s in cfg.succs(b) {
            if let Some(&phi) = phi_of_block.get(&s) {
                phi_incomings.entry(phi).or_default().push((b, current));
            }
        }
        for &c in children.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
            stack.push((c, current));
        }
    }

    // Loads and stores of the slot in unreachable blocks were not visited by
    // the renaming walk; drop them too so the alloca has no remaining uses.
    for (b, i) in func.all_insts() {
        if visited.contains(&b) {
            continue;
        }
        match &func.inst(i).kind {
            InstKind::Load { ptr, .. } if *ptr == slot => {
                replacements.push((i, undef));
                removals.push(i);
            }
            InstKind::Store { ptr, .. } if *ptr == slot => removals.push(i),
            _ => {}
        }
    }

    // Apply: fill phis, rewrite loads, drop stores/loads/alloca.
    for (phi, mut incomings) in phi_incomings {
        incomings.sort_by_key(|(b, _)| *b);
        if let InstKind::Phi { incomings: slots } = &mut func.inst_mut(phi).kind {
            *slots = incomings;
        }
    }
    // Resolve chains: a load replaced by another load's value.
    let mut resolved: HashMap<InstId, Operand> = HashMap::new();
    for (load, value) in &replacements {
        let mut v = *value;
        let mut guard = 0;
        while let Operand::Inst(id) = v {
            if let Some(&next) = resolved.get(&id) {
                v = next;
                guard += 1;
                if guard > 1000 {
                    break;
                }
            } else {
                break;
            }
        }
        resolved.insert(*load, v);
    }
    for (load, value) in resolved {
        func.replace_all_uses(Operand::Inst(load), value);
    }
    for i in removals {
        func.remove_inst(i);
    }
    func.remove_inst(alloca);
}

/// Children lists of the dominator tree.
fn dom_children(func: &Function, dt: &DomTree) -> HashMap<BlockId, Vec<BlockId>> {
    let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for b in func.block_ids() {
        if let Some(d) = dt.idom(b) {
            children.entry(d).or_default().push(b);
        }
    }
    children
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_ir::{print_function, verify_function};
    use stack_minic::compile;

    fn promoted(src: &str, fname: &str) -> Function {
        let mut m = compile(src, "t.c").unwrap();
        let f = m.function_mut(fname).unwrap();
        run(f);
        verify_function(f).unwrap_or_else(|e| panic!("{e:?}\n{}", print_function(f)));
        f.clone()
    }

    #[test]
    fn straight_line_promotion_removes_allocas() {
        let f = promoted(
            "int f(int x) { int y = x + 1; int z = y * 2; return z; }",
            "f",
        );
        let text = print_function(&f);
        assert!(!text.contains("alloca"), "{text}");
        assert!(!text.contains("load"), "{text}");
        assert!(!text.contains("store"), "{text}");
        assert!(text.contains("add i32"));
        assert!(text.contains("mul i32"));
    }

    #[test]
    fn branches_insert_phi() {
        let f = promoted(
            "int f(int x) { int y = 0; if (x > 0) y = 1; else y = 2; return y; }",
            "f",
        );
        let text = print_function(&f);
        assert!(!text.contains("alloca"), "{text}");
        assert!(text.contains("phi"), "{text}");
    }

    #[test]
    fn loops_insert_phi_at_header() {
        let f = promoted(
            "int f(int n) { int i = 0; int s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
            "f",
        );
        let text = print_function(&f);
        assert!(!text.contains("alloca"), "{text}");
        assert!(text.matches("phi").count() >= 2, "{text}");
    }

    #[test]
    fn arrays_are_not_promoted() {
        let f = promoted(
            "int f(int i) { char buf[8]; buf[i] = 1; return buf[0]; }",
            "f",
        );
        let text = print_function(&f);
        assert!(text.contains("alloca i8 x 8"), "{text}");
        assert!(text.contains("ptradd"), "{text}");
    }

    #[test]
    fn address_taken_slots_are_not_promoted() {
        let f = promoted(
            "int g(int *p);\nint f(int x) { int y = x; return g(&y); }",
            "f",
        );
        let text = print_function(&f);
        assert!(text.contains("alloca"), "{text}");
    }

    #[test]
    fn figure2_pattern_promotes_to_clean_ssa() {
        let f = promoted(
            "int poll(struct tun_struct *tun) {\n\
               long sk = tun->sk;\n\
               if (!tun) return 1;\n\
               return 0;\n\
             }",
            "poll",
        );
        let text = print_function(&f);
        // The load through tun (member access) stays; the local slots vanish.
        assert!(!text.contains("alloca"), "{text}");
        assert!(text.contains("load i64"), "{text}");
        assert!(text.contains("icmp eq"), "{text}");
    }

    #[test]
    fn parameters_reaching_uses_directly() {
        let f = promoted("int f(int x) { return x + 100; }", "f");
        let text = print_function(&f);
        assert!(text.contains("add i32 %arg0, 100"), "{text}");
    }
}
