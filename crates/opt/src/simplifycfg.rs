//! Control-flow simplification: folding branches on constant conditions and
//! cleaning up phi nodes that lose incoming edges.
//!
//! This is the pass that actually *discards* an unstable check once a UB
//! rewrite has folded its condition to a constant — the step that turns
//! "the compiler knows this check is always false" into "the check is gone
//! from the generated code" (paper §1, Figure 1).

use stack_ir::{BlockId, Cfg, Function, InstKind, Operand, Terminator};
use std::collections::HashSet;

/// Run CFG simplification. Returns the number of branches folded.
pub fn run(func: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        let mut changed = false;
        // Fold conditional branches on constants.
        for b in func.block_ids().collect::<Vec<_>>() {
            let term = func.block(b).terminator.clone();
            if let Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } = term
            {
                if let Some(c) = cond.as_const() {
                    let (taken, not_taken) = if c.bits != 0 {
                        (then_bb, else_bb)
                    } else {
                        (else_bb, then_bb)
                    };
                    func.block_mut(b).terminator = Terminator::Br { target: taken };
                    if not_taken != taken {
                        remove_phi_incoming(func, not_taken, b);
                    }
                    folded += 1;
                    changed = true;
                } else if then_bb == else_bb {
                    func.block_mut(b).terminator = Terminator::Br { target: then_bb };
                    changed = true;
                }
            }
        }
        // Drop phi entries from blocks that became unreachable.
        let cfg = Cfg::compute(func);
        let reachable: HashSet<BlockId> = cfg.reverse_post_order().iter().copied().collect();
        for b in func.block_ids().collect::<Vec<_>>() {
            if !reachable.contains(&b) {
                continue;
            }
            let preds: HashSet<BlockId> = cfg
                .preds(b)
                .iter()
                .copied()
                .filter(|p| reachable.contains(p))
                .collect();
            for &i in &func.block(b).insts.clone() {
                if let InstKind::Phi { incomings } = &func.inst(i).kind {
                    let filtered: Vec<(BlockId, Operand)> = incomings
                        .iter()
                        .filter(|(p, _)| preds.contains(p))
                        .cloned()
                        .collect();
                    if filtered.len() != incomings.len() {
                        changed = true;
                        if filtered.len() == 1 {
                            let value = filtered[0].1;
                            func.replace_all_uses(Operand::Inst(i), value);
                            func.remove_inst(i);
                        } else if let InstKind::Phi { incomings } = &mut func.inst_mut(i).kind {
                            *incomings = filtered;
                        }
                    } else if filtered.len() == 1 {
                        // Single-predecessor phi left over from earlier folding.
                        let value = filtered[0].1;
                        func.replace_all_uses(Operand::Inst(i), value);
                        func.remove_inst(i);
                        changed = true;
                    }
                }
            }
        }
        // Delete the contents of unreachable blocks: this is the moment a
        // discarded check actually disappears from the generated code.
        for b in func.block_ids().collect::<Vec<_>>() {
            if reachable.contains(&b) {
                continue;
            }
            let insts = func.block(b).insts.clone();
            if insts.is_empty()
                && matches!(func.block(b).terminator, stack_ir::Terminator::Unreachable)
            {
                continue;
            }
            for i in insts {
                func.remove_inst(i);
            }
            func.block_mut(b).terminator = stack_ir::Terminator::Unreachable;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    folded
}

/// Remove the incoming edge from `pred` in all phis of `block`.
fn remove_phi_incoming(func: &mut Function, block: BlockId, pred: BlockId) {
    for &i in &func.block(block).insts.clone() {
        if let InstKind::Phi { incomings } = &mut func.inst_mut(i).kind {
            incomings.retain(|(p, _)| *p != pred);
        }
    }
}

/// Count the conditional branches whose condition is a constant (i.e. checks
/// that *would* be discarded). Used by the pipeline to detect discarded
/// sanity checks without destroying the IR first.
pub fn count_constant_branches(func: &Function) -> usize {
    func.block_ids()
        .filter(|&b| {
            matches!(
                func.block(b).terminator,
                Terminator::CondBr { cond, .. } if cond.as_const().is_some()
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_ir::{print_function, verify_function, CmpPred, FunctionBuilder, Type};

    #[test]
    fn folds_constant_branch_and_cleans_phi() {
        let mut b = FunctionBuilder::with_params("f", &[("x", Type::I32)], Type::I32);
        let t = b.add_block("t");
        let e = b.add_block("e");
        let m = b.add_block("m");
        b.cond_br(Operand::bool(false), t, e);
        b.switch_to(t);
        b.br(m);
        b.switch_to(e);
        b.br(m);
        b.switch_to(m);
        let phi = b.phi(
            Type::I32,
            vec![
                (t, Operand::int(Type::I32, 1)),
                (e, Operand::int(Type::I32, 2)),
            ],
        );
        b.ret(phi);
        let mut f = b.finish();
        let folded = run(&mut f);
        assert_eq!(folded, 1);
        verify_function(&f).unwrap();
        let text = print_function(&f);
        // Only the else path survives; the phi collapses to the constant 2.
        assert!(text.contains("ret 2"), "{text}");
    }

    #[test]
    fn keeps_dynamic_branches() {
        let mut b = FunctionBuilder::with_params("f", &[("x", Type::I32)], Type::I32);
        let c = b.cmp(CmpPred::Sgt, b.param(0), Operand::int(Type::I32, 0));
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Operand::int(Type::I32, 1));
        b.switch_to(e);
        b.ret(Operand::int(Type::I32, 0));
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0);
        assert_eq!(count_constant_branches(&f), 0);
    }

    #[test]
    fn counts_constant_branches_without_mutation() {
        let mut b = FunctionBuilder::with_params("f", &[], Type::Void);
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.cond_br(Operand::bool(true), t, e);
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let f = b.finish();
        assert_eq!(count_constant_branches(&f), 1);
    }
}
