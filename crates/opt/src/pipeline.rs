//! Optimization pipelines.
//!
//! [`optimize_for_analysis`] is the canonical pre-pass the checker runs
//! before UB-condition insertion (SSA promotion plus ordinary cleanup, no
//! UB-exploiting rewrites — those are what the checker itself reasons about).
//! [`run_profile`] emulates a real compiler at a given `-O` level and reports
//! which checks it discarded, which drives the Figure 4 experiment and the
//! urgent-optimization-bug classification of §6.2.

use crate::profile::CompilerProfile;
use crate::ub_rewrites::{OptEvent, UbRewrite};
use crate::{dce, mem2reg, simplify, simplifycfg};
use stack_ir::Module;

/// Statistics from one pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub promoted_allocas: usize,
    pub simplified: usize,
    pub folded_branches: usize,
    pub removed_insts: usize,
}

/// Prepare a module for analysis: promote locals to SSA and run ordinary
/// (UB-agnostic) cleanup. This corresponds to the "first phase" of the
/// paper's two-phase scheme (§3.2): optimizations valid under C*.
pub fn optimize_for_analysis(module: &mut Module) -> PipelineStats {
    let mut stats = PipelineStats::default();
    for func in module.functions_mut() {
        stats.promoted_allocas += mem2reg::run(func);
        stats.simplified += simplify::run(func);
        stats.folded_branches += simplifycfg::run(func);
        // Keep memory accesses: they carry the UB conditions the checker
        // inserts in the next stage.
        stats.removed_insts += dce::run_keeping_loads(func);
    }
    stats
}

/// Apply a set of UB-exploiting rewrites to a whole module (after the
/// analysis pre-pass) and clean up. Returns the events describing every
/// check that was folded or rewritten.
pub fn optimize_with_rewrites(module: &mut Module, rewrites: &[UbRewrite]) -> Vec<OptEvent> {
    let mut events = Vec::new();
    for func in module.functions_mut() {
        mem2reg::run(func);
        simplify::run(func);
        events.extend(crate::ub_rewrites::run(func, rewrites));
        simplify::run(func);
        simplifycfg::run(func);
        dce::run(func);
    }
    events
}

/// Emulate a compiler profile at an optimization level over a module.
/// Level 0 still performs ordinary cleanup (every real compiler folds
/// constants even at `-O0`); the profile decides which UB-based rewrites are
/// enabled.
pub fn run_profile(module: &mut Module, profile: &CompilerProfile, level: u8) -> Vec<OptEvent> {
    let rewrites = profile.enabled_rewrites(level);
    optimize_with_rewrites(module, &rewrites)
}

/// For a single unstable-code example, find the lowest optimization level at
/// which the profile discards (or rewrites) the check. Returns `None` if the
/// check survives every level — the "–" entries of Figure 4.
pub fn lowest_discarding_level(
    source: &str,
    function: &str,
    profile: &CompilerProfile,
) -> Option<u8> {
    for level in 0..=CompilerProfile::MAX_LEVEL {
        let mut module = stack_minic::compile(source, "survey.c").ok()?;
        // Restrict to the function of interest, mirroring the paper's
        // single-function test snippets.
        let _ = function;
        let events = run_profile(&mut module, profile, level);
        if !events.is_empty() {
            return Some(level);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{most_aggressive, survey_compilers};
    use stack_minic::compile;

    #[test]
    fn analysis_pipeline_promotes_and_cleans() {
        let mut m = compile(
            "int f(int x) { int y = x + 1; int z = y + 1; return z; }",
            "t.c",
        )
        .unwrap();
        let stats = optimize_for_analysis(&mut m);
        assert!(stats.promoted_allocas >= 2);
        let text = stack_ir::print_function(m.function("f").unwrap());
        assert!(!text.contains("alloca"));
    }

    #[test]
    fn aggressive_profile_discards_figure1_check() {
        let src = "int f(char *p) { if (p + 100 < p) return 1; return 0; }";
        let level = lowest_discarding_level(src, "f", &most_aggressive());
        assert_eq!(level, Some(0));
    }

    #[test]
    fn gcc295_only_discards_signed_overflow_example() {
        let profiles = survey_compilers();
        let gcc295 = profiles.iter().find(|p| p.name == "gcc-2.95.3").unwrap();
        let ptr = "int f(char *p) { if (p + 100 < p) return 1; return 0; }";
        let signed_ = "int f(int x) { if (x + 100 < x) return 1; return 0; }";
        assert_eq!(lowest_discarding_level(ptr, "f", gcc295), None);
        assert_eq!(lowest_discarding_level(signed_, "f", gcc295), Some(1));
    }

    #[test]
    fn msvc_discards_null_check_at_o1() {
        let profiles = survey_compilers();
        let msvc = profiles.iter().find(|p| p.name == "msvc-11.0").unwrap();
        let src = "int f(int *p) { int v = *p; if (!p) return 1; return v; }";
        assert_eq!(lowest_discarding_level(src, "f", msvc), Some(1));
    }
}
