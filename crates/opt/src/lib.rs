//! `stack-opt` — IR optimization passes and compiler profiles.
//!
//! This crate plays two roles in the reproduction of the STACK paper
//! (Wang et al., SOSP 2013):
//!
//! 1. **Substrate for the checker.** The frontend lowers every local to a
//!    stack slot; [`mem2reg`] promotes them to SSA, and [`simplify`],
//!    [`simplifycfg`], and [`dce`] provide the ordinary, UB-agnostic cleanup
//!    that corresponds to optimizations legal under the paper's C* dialect.
//!
//! 2. **The compilers being studied.** [`ub_rewrites`] implements the
//!    UB-exploiting optimizations surveyed in §2 (null-check elimination,
//!    pointer/signed overflow folding, shift and `abs` reasoning, value-range
//!    propagation), and [`profile`] encodes which of the paper's 16 surveyed
//!    compiler versions performs which rewrite at which `-O` level. Running
//!    [`pipeline::run_profile`] therefore reproduces Figure 4 by actually
//!    optimizing the example programs, not by reading back a table.

pub mod dce;
pub mod mem2reg;
pub mod pipeline;
pub mod profile;
pub mod simplify;
pub mod simplifycfg;
pub mod ub_rewrites;

pub use pipeline::{
    lowest_discarding_level, optimize_for_analysis, optimize_with_rewrites, run_profile,
    PipelineStats,
};
pub use profile::{
    most_aggressive, survey_compilers, with_fno_delete_null_pointer_checks,
    with_fno_strict_overflow, with_fwrapv, CompilerProfile,
};
pub use ub_rewrites::{OptEvent, UbRewrite};
