//! `stack` — command-line front end for the STACK unstable-code checker.
//!
//! Usage:
//!
//! ```text
//! stack check <file.mc> [--json] [--include-macros] [--threads N] [--no-cache] [--no-incremental]
//! stack demo  <pattern-id>                            # analyze a built-in paper example
//! stack list                                          # list built-in examples
//! stack survey                                        # print the Figure 4 compiler matrix rows
//! ```
//!
//! `--threads N` pins the parallel per-function driver to `N` workers
//! (default: available parallelism; `1` is fully sequential), `--no-cache`
//! disables the memoized solver query cache, and `--no-incremental` falls
//! back to from-scratch solving per query instead of the persistent
//! per-function incremental instances (the escape hatch for comparing the
//! two modes or sidestepping incremental-mode issues).

use stack_core::{Checker, CheckerConfig};
use stack_opt::{lowest_discarding_level, survey_compilers};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let Some(path) = args.get(1) else {
                eprintln!(
                    "usage: stack check <file.mc> [--json] [--include-macros] \
                     [--threads N] [--no-cache] [--no-incremental]"
                );
                return ExitCode::from(2);
            };
            let json = args.iter().any(|a| a == "--json");
            let include_macros = args.iter().any(|a| a == "--include-macros");
            let query_cache = !args.iter().any(|a| a == "--no-cache");
            let incremental = !args.iter().any(|a| a == "--no-incremental");
            let threads = match args.iter().position(|a| a == "--threads") {
                Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("stack: --threads needs a positive integer");
                        return ExitCode::from(2);
                    }
                },
                None => None,
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("stack: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let checker = Checker::with_config(CheckerConfig {
                report_compiler_generated: include_macros,
                threads,
                query_cache,
                incremental,
                ..CheckerConfig::default()
            });
            match checker.check_source(&source, path) {
                Ok(result) => {
                    if json {
                        println!("{}", serde_json::to_string_pretty(&result.reports).unwrap());
                    } else {
                        for report in &result.reports {
                            print!("{report}");
                        }
                        eprintln!(
                            "stack: {} report(s), {} queries, {} timeouts",
                            result.reports.len(),
                            result.stats.queries,
                            result.stats.timeouts
                        );
                    }
                    if result.reports.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("stack: {path}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("demo") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: stack demo <pattern-id>   (see `stack list`)");
                return ExitCode::from(2);
            };
            let Some(pattern) = stack_corpus::all_patterns()
                .into_iter()
                .find(|p| p.id == *id)
            else {
                eprintln!("stack: unknown pattern `{id}` (see `stack list`)");
                return ExitCode::from(2);
            };
            println!(
                "// {} ({})\n{}\n",
                pattern.id, pattern.paper_ref, pattern.source
            );
            let result = Checker::new()
                .check_source(pattern.source, &format!("{id}.c"))
                .unwrap();
            for report in &result.reports {
                print!("{report}");
            }
            ExitCode::SUCCESS
        }
        Some("list") => {
            for p in stack_corpus::all_patterns() {
                println!("{:<36} {}", p.id, p.paper_ref);
            }
            ExitCode::SUCCESS
        }
        Some("survey") => {
            let src = "int f(int x) { if (x + 100 < x) return 1; return 0; }";
            println!("check: if (x + 100 < x)");
            for profile in survey_compilers() {
                let level = lowest_discarding_level(src, "f", &profile);
                println!(
                    "  {:<18} {}",
                    profile.name,
                    level.map(|l| format!("O{l}")).unwrap_or_else(|| "–".into())
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: stack <check|demo|list|survey> ...");
            ExitCode::from(2)
        }
    }
}
