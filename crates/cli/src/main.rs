//! `stack` — command-line front end for the STACK unstable-code checker.
//!
//! Usage:
//!
//! ```text
//! stack check <file.mc> [options]                # analyze one file
//! stack scan  <dir|manifest> [options]           # batch-analyze many files
//! stack scan  --synth N [--seed S] [options]     # scan a generated archive
//! stack store merge <out> <in...> [--compact N] [--json]   # fold stores into one
//! stack store inspect <file> [--json]            # header/generation/entry report
//! stack store fsck <file> [--repair] [--json]    # check (and heal) a damaged store
//! stack bench [--out <path>] [--fast]            # checker-scaling benchmark
//! stack gen-archive <dir> [--packages N] [--seed S]
//! stack demo  <pattern-id>                       # analyze a built-in paper example
//! stack list                                     # list built-in examples
//! stack survey                                   # print the Figure 4 compiler matrix rows
//! ```
//!
//! Shared analysis options: `--threads N` pins the parallel per-function
//! driver to `N` workers (default: available parallelism; `1` is fully
//! sequential), `--no-cache` disables the memoized query store,
//! `--no-incremental` falls back to from-scratch solving per query,
//! `--no-preprocess` turns off the SAT core's pre/inprocessing layer
//! (failed-literal probing, subsumption, bounded variable elimination,
//! clause vivification, LBD-aware clause-database reduction) — the
//! pre-LBD solver, kept reachable as the benchmark baseline —
//! `--no-core-cache` turns off assumption-core memoization (the Unsat
//! fast path that answers superset queries from cached final-conflict
//! cores, and the core-seeded minimal-UB-set search) — the PR 9 Unsat
//! path, kept reachable as the benchmark baseline — `--no-hbr` turns
//! off hyper-binary resolution during failed-literal probing,
//! `--instance-granularity <function|fragment>` picks whether incremental
//! solving keeps one persistent instance per function (default; fragments
//! share the encoding) or starts fresh per fragment, and
//! `--include-macros` keeps macro-origin reports. `--cache-file <path>`
//! backs the query store with a disk file: existing entries warm-start the
//! run, and the (possibly grown) store is saved back on success — the
//! cross-run persistence mode that lets repeated archive scans skip almost
//! every solver query. A cache file written by a different encoder/solver
//! revision is detected and discarded, never trusted; a torn or truncated
//! file is *salvaged* — the checksummed intact entries load, the damage is
//! reported on stderr, and the next save heals the file (`stack store
//! fsck --repair` does the same without running an analysis).
//! `--query-budget N` caps each solver query at `N` propagations (the
//! paper's 5-second timeout, made deterministic; `0` = unlimited): a query
//! that exhausts the budget degrades to `Unknown` — counted, never
//! reported as a bug, never cached — and its module is counted as
//! degraded and never recorded in the scan cache.
//!
//! `scan`-only options: `--jobs N` runs `N` file-level workers (the outer
//! level of the two-level pipeline; per-module `--threads` defaults to 1
//! when `--jobs` > 1 so the levels don't oversubscribe), `--scan-cache
//! <path>` persists per-function results keyed by path-independent replay
//! key so an edited module replays its unchanged functions and only the
//! edited functions hit the solver (an unchanged module is skipped
//! entirely, and identical vendored files share one analysis across
//! paths), `--compact-store N` prunes
//! query-store entries unused for `N` scans when the `--cache-file` is
//! saved, and `--shard i/n` (1-based) analyzes only the modules a stable
//! hash of each input's *content* assigns to shard `i` of `n` — the
//! fan-out half of a distributed scan whose per-shard stores
//! `stack store merge` later folds back into one. Output order is
//! deterministic regardless of `--jobs`. Flag combinations are validated
//! before any work starts: scan-only flags are rejected by `check`, and
//! `--compact-store` without `--cache-file` is an immediate usage error.
//!
//! Exit codes: `check` exits 0 with no reports, 1 with reports, 2 on any
//! error. `scan` is a batch driver: it exits 0 when every file was analyzed
//! (reports or not) and 2 when any file failed to read or compile, or any
//! I/O (cache-file, `--out`) operation failed.

use serde::Serialize;
use stack_core::{
    AnalysisSession, CheckStats, Checker, CheckerConfig, ScanEvent, ScanPipeline, ScanSource,
    ScanStore, ScanTask,
};
use stack_opt::{lowest_discarding_level, survey_compilers};
use stack_solver::DiskQueryStore;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("gen-archive") => cmd_gen_archive(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("list") => cmd_list(),
        Some("survey") => cmd_survey(),
        _ => {
            eprintln!("usage: stack <check|scan|store|bench|gen-archive|demo|list|survey> ...");
            ExitCode::from(2)
        }
    }
}

// ---- shared option parsing --------------------------------------------------

/// Which command is parsing — `check` rejects scan-only flags up front
/// instead of silently ignoring them (or, worse, erroring after the
/// analysis already ran).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Check,
    Scan,
}

/// The flags only `scan` understands, rejected by `check` at parse time.
const SCAN_ONLY_FLAGS: [&str; 5] = ["--jobs", "--scan-cache", "--shard", "--synth", "--seed"];

/// Options shared by `check` and `scan`.
#[derive(Debug)]
struct AnalysisOpts {
    json: bool,
    include_macros: bool,
    threads: Option<usize>,
    query_cache: bool,
    incremental: bool,
    /// `--no-preprocess` turns the SAT core's pre/inprocessing layer off
    /// (the pre-LBD solver, kept as the benchmark baseline).
    preprocess: bool,
    /// `--instance-granularity fragment` starts a fresh incremental solver
    /// instance per checker fragment instead of per function.
    fragment_instances: bool,
    /// `--no-core-cache` turns assumption-core memoization (and the
    /// core-seeded minimal-UB-set search) off — the PR 9 Unsat path.
    core_cache: bool,
    /// `--no-hbr` turns hyper-binary resolution during probing off.
    hbr: bool,
    /// Per-query propagation budget (`Some(0)` = unlimited).
    query_budget: Option<u64>,
    cache_file: Option<PathBuf>,
    out: Option<PathBuf>,
    quiet: bool,
    /// `scan` only: file-level workers of the two-level pipeline.
    jobs: usize,
    /// `scan` only: the persisted report cache behind incremental re-scan.
    scan_cache: Option<PathBuf>,
    /// `scan` only: compaction horizon for the `--cache-file` store.
    compact_store: Option<u64>,
    /// `scan` only: `--shard i/n` as (1-based index, count).
    shard: Option<(usize, usize)>,
}

impl AnalysisOpts {
    /// Parse and validate every flag combination before any work starts:
    /// a bad invocation must exit 2 with a usage message immediately, not
    /// after a long scan already ran.
    fn parse(args: &[String], mode: Mode) -> Result<AnalysisOpts, String> {
        if mode == Mode::Check {
            if let Some(flag) = SCAN_ONLY_FLAGS.iter().find(|f| has_flag(args, f)) {
                return Err(format!("{flag} is a scan-only flag (use `stack scan`)"));
            }
        }
        let jobs = match parse_flag_value::<usize>(args, "--jobs")? {
            Some(0) => return Err("--jobs needs a positive integer".to_string()),
            other => other,
        };
        let threads = match parse_flag_value::<usize>(args, "--threads")? {
            Some(0) => return Err("--threads needs a positive integer".to_string()),
            other => other,
        };
        let cache_file = flag_value(args, "--cache-file")?.map(PathBuf::from);
        let compact_store = match parse_flag_value::<u64>(args, "--compact-store")? {
            Some(0) => return Err("--compact-store needs a positive integer".to_string()),
            other => other,
        };
        if compact_store.is_some() && cache_file.is_none() {
            return Err("--compact-store requires --cache-file (it prunes that store)".to_string());
        }
        let shard = match flag_value(args, "--shard")? {
            Some(text) => Some(parse_shard(text)?),
            None => None,
        };
        let fragment_instances = match flag_value(args, "--instance-granularity")? {
            None | Some("function") => false,
            Some("fragment") => true,
            Some(other) => {
                return Err(format!(
                    "--instance-granularity: expected `function` or `fragment`, got `{other}`"
                ))
            }
        };
        Ok(AnalysisOpts {
            json: has_flag(args, "--json"),
            include_macros: has_flag(args, "--include-macros"),
            threads,
            query_cache: !has_flag(args, "--no-cache"),
            incremental: !has_flag(args, "--no-incremental"),
            preprocess: !has_flag(args, "--no-preprocess"),
            fragment_instances,
            core_cache: !has_flag(args, "--no-core-cache"),
            hbr: !has_flag(args, "--no-hbr"),
            query_budget: parse_flag_value::<u64>(args, "--query-budget")?,
            cache_file,
            out: flag_value(args, "--out")?.map(PathBuf::from),
            quiet: has_flag(args, "--quiet"),
            jobs: jobs.unwrap_or(1),
            scan_cache: flag_value(args, "--scan-cache")?.map(PathBuf::from),
            compact_store,
            shard,
        })
    }

    /// `scan` only: with an explicit file-level width and no explicit
    /// per-module width, pin modules to one thread — the file level is the
    /// scalable one on archives, and two self-sizing pools would
    /// oversubscribe the machine. `check` has no file level, so it never
    /// applies this.
    fn pin_module_threads_for_jobs(&mut self) {
        if self.jobs > 1 && self.threads.is_none() {
            self.threads = Some(1);
        }
    }

    fn config(&self) -> CheckerConfig {
        CheckerConfig {
            report_compiler_generated: self.include_macros,
            threads: self.threads,
            query_cache: self.query_cache,
            incremental: self.incremental,
            preprocess: self.preprocess,
            fragment_instances: self.fragment_instances,
            core_cache: self.core_cache,
            hbr: self.hbr,
            query_budget: self
                .query_budget
                .unwrap_or(CheckerConfig::default().query_budget),
        }
    }

    /// Build the session, opening the disk-backed store when `--cache-file`
    /// was given. Returns the store handle too, so the caller can save it.
    fn open_session(&self) -> Result<(AnalysisSession, Option<Arc<DiskQueryStore>>), String> {
        match &self.cache_file {
            Some(path) => {
                let store = Arc::new(
                    DiskQueryStore::open(path)
                        .map_err(|e| format!("cannot open cache file {}: {e}", path.display()))?,
                );
                if store.was_invalidated() {
                    eprintln!(
                        "stack: cache file {} was written by a different encoder/solver \
                         revision; starting cold",
                        path.display()
                    );
                }
                if let Some(salvage) = store.salvage() {
                    eprintln!(
                        "stack: cache file {}: {}",
                        path.display(),
                        render_salvage(salvage)
                    );
                }
                store.set_compaction(self.compact_store);
                Ok((
                    AnalysisSession::with_store(self.config(), store.clone() as _),
                    Some(store),
                ))
            }
            None => Ok((AnalysisSession::new(self.config()), None)),
        }
    }

    /// Open the persisted report cache when `--scan-cache` was given.
    fn open_scan_store(&self) -> Result<Option<Arc<ScanStore>>, String> {
        let Some(path) = &self.scan_cache else {
            return Ok(None);
        };
        let store = Arc::new(
            ScanStore::open(path)
                .map_err(|e| format!("cannot open scan cache {}: {e}", path.display()))?,
        );
        if store.was_invalidated() {
            eprintln!(
                "stack: scan cache {} was written by a different revision; starting cold",
                path.display()
            );
        }
        if let Some(salvage) = store.salvage() {
            eprintln!(
                "stack: scan cache {}: {}",
                path.display(),
                render_salvage(salvage)
            );
        }
        Ok(Some(store))
    }
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse `--shard i/n` (1-based): `2/4` means "analyze the second of four
/// deterministic content-keyed partitions".
fn parse_shard(text: &str) -> Result<(usize, usize), String> {
    let parsed = text
        .split_once('/')
        .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
    match parsed {
        Some((index, count)) if count > 0 && (1..=count).contains(&index) => Ok((index, count)),
        _ => Err(format!(
            "--shard: expected i/n with 1 <= i <= n (e.g. 2/4), got `{text}`"
        )),
    }
}

/// Keep only the tasks the content-keyed partition assigns to `index` (of
/// `count`). The key hashes each input's raw bytes — never its position in
/// the list — so shard membership survives the archive growing or files
/// moving, and every shard of a fan-out computes the same partition
/// without coordination. An unreadable path falls back to hashing the task
/// name, so the file still belongs to exactly one shard and exactly one
/// shard reports its failure.
fn shard_tasks(tasks: Vec<ScanTask>, index: usize, count: usize) -> Vec<ScanTask> {
    tasks
        .into_iter()
        .filter(|task| {
            let key = match &task.source {
                ScanSource::Inline(source) => stack_core::content_key(source.as_bytes()),
                ScanSource::Path(path) => match std::fs::read(path) {
                    Ok(bytes) => stack_core::content_key(&bytes),
                    Err(_) => stack_core::content_key(task.name.as_bytes()),
                },
            };
            stack_core::shard_assignment(key, count) == index - 1
        })
        .collect()
}

/// The value following a `--flag value` pair, if the flag is present.
fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("{name} needs a value")),
        },
        None => Ok(None),
    }
}

fn parse_flag_value<T: std::str::FromStr>(
    args: &[String],
    name: &str,
) -> Result<Option<T>, String> {
    match flag_value(args, name)? {
        Some(text) => text
            .parse()
            .map(Some)
            .map_err(|_| format!("{name}: cannot parse `{text}`")),
        None => Ok(None),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("stack: {message}");
    ExitCode::from(2)
}

/// Write `content` to `path`, mapping failures to a user-facing error.
fn write_output(path: &Path, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// One stderr-ready sentence describing what the salvage path recovered
/// from a damaged store body (the fault-tolerance CI smoke greps for
/// "salvaged").
fn render_salvage(salvage: &stack_solver::SalvageReport) -> String {
    format!(
        "store body was damaged; salvaged {} entr{} and dropped {} bad line{} (first at byte \
         offset {}); the next save repairs the file",
        salvage.salvaged_entries,
        if salvage.salvaged_entries == 1 {
            "y"
        } else {
            "ies"
        },
        salvage.dropped_lines,
        if salvage.dropped_lines == 1 { "" } else { "s" },
        salvage.first_bad_offset.unwrap_or(0)
    )
}

/// Save a disk-backed store, reporting how many entries were persisted.
fn save_store(store: &Arc<DiskQueryStore>, quiet: bool) -> Result<(), String> {
    let entries = store
        .save()
        .map_err(|e| format!("cannot save cache file {}: {e}", store.path().display()))?;
    if !quiet {
        eprintln!(
            "stack: saved {entries} cache entries to {}",
            store.path().display()
        );
    }
    Ok(())
}

// ---- check ------------------------------------------------------------------

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: stack check <file.mc> [--json] [--include-macros] [--threads N] \
             [--no-cache] [--no-incremental] [--query-budget N] [--cache-file F] [--out F]"
        );
        return ExitCode::from(2);
    };
    let opts = match AnalysisOpts::parse(args, Mode::Check) {
        Ok(opts) => opts,
        Err(e) => return fail(&e),
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let (session, store) = match opts.open_session() {
        Ok(pair) => pair,
        Err(e) => return fail(&e),
    };
    let result = match session.check_source(&source, path) {
        Ok(result) => result,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    if opts.json {
        let json = match serde_json::to_string_pretty(&result.reports) {
            Ok(json) => json,
            Err(e) => return fail(&format!("cannot serialize reports: {e}")),
        };
        match &opts.out {
            Some(out) => {
                if let Err(e) = write_output(out, &json) {
                    return fail(&e);
                }
            }
            None => println!("{json}"),
        }
    } else {
        let mut rendered = String::new();
        for report in &result.reports {
            rendered.push_str(&report.to_string());
        }
        match &opts.out {
            Some(out) => {
                if let Err(e) = write_output(out, &rendered) {
                    return fail(&e);
                }
            }
            None => print!("{rendered}"),
        }
        eprintln!(
            "stack: {} report(s), {} queries, {} timeouts",
            result.reports.len(),
            result.stats.queries,
            result.stats.timeouts
        );
    }
    if let Some(store) = &store {
        if let Err(e) = save_store(store, opts.quiet) {
            return fail(&e);
        }
    }
    if result.reports.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

// ---- scan -------------------------------------------------------------------

/// Machine-readable scan summary (`--json` / `--out`).
#[derive(Serialize)]
struct ScanSummary {
    files: usize,
    failures: usize,
    modules_skipped: usize,
    /// Functions replayed from the scan cache without solver work (the
    /// per-function incremental re-scan counter).
    functions_skipped: usize,
    functions: usize,
    reports: usize,
    queries: u64,
    /// Degraded queries: budget-exhausted, answered `Unknown`, never
    /// cached or persisted.
    degraded_queries: u64,
    /// Modules with at least one degraded query — analyzed under the
    /// budget, never recorded in the scan cache.
    degraded_modules: usize,
    timeouts: u64,
    /// Total SAT-core propagations, including the propagation-equivalents
    /// charged for pre/inprocessing work — the deterministic currency
    /// query budgets are denominated in.
    propagations: u64,
    /// Total SAT-core conflicts.
    conflicts: u64,
    /// Total SAT-core restarts.
    restarts: u64,
    /// Clauses learned by conflict analysis.
    learned_clauses: u64,
    /// Learned clauses evicted by LBD-aware clause-database reduction.
    deleted_clauses: u64,
    /// Average learn-time literal-block-distance ("glue") of learned
    /// clauses; 0 when nothing was learned.
    avg_lbd: f64,
    /// Simplification steps by the solver's pre/inprocessing layer (failed
    /// literals, subsumed/strengthened clauses, eliminated variables,
    /// vivified clauses).
    preprocess_eliminations: u64,
    /// Queries the SAT core answered Sat.
    sat_queries: u64,
    /// Queries the SAT core answered Unsat.
    unsat_queries: u64,
    /// Queries answered from a cached model without search (a previous
    /// model still satisfied the new assumption set).
    model_cache_hits: u64,
    /// Queries answered Unsat in zero propagations because a memoized
    /// assumption core was a subset of the query's assumptions.
    core_cache_hits: u64,
    /// Assumption cores extracted from final conflicts.
    cores_recorded: u64,
    /// Average literal count of extracted assumption cores; 0 when none
    /// were recorded.
    avg_core_size: f64,
    /// Binary clauses added by hyper-binary resolution during failed
    /// literal probing.
    hbr_binaries_added: u64,
    /// Learned clauses evicted from the mid tier (unused since the last
    /// tier-2 sweep).
    deleted_tier2: u64,
    /// Learned clauses evicted from the local tier (high-LBD half).
    deleted_local: u64,
    /// `minimal_ub_set` queries skipped because the memoized assumption
    /// core proved the candidate condition irrelevant.
    minimization_queries_saved: u64,
    store_hits: u64,
    store_misses: u64,
    store_hit_rate: f64,
    cache_file_loaded_entries: u64,
    scan_cache_loaded_entries: u64,
    jobs: usize,
    /// Which content-keyed shard this scan analyzed (1-based; `1` of `1`
    /// when unsharded).
    shard_index: usize,
    shard_count: usize,
    elapsed_ms: u64,
}

fn cmd_scan(args: &[String]) -> ExitCode {
    let mut opts = match AnalysisOpts::parse(args, Mode::Scan) {
        Ok(opts) => opts,
        Err(e) => return fail(&e),
    };
    opts.pin_module_threads_for_jobs();
    let mut tasks = match gather_scan_sources(args) {
        Ok(tasks) => tasks,
        Err(e) => return fail(&e),
    };
    if let Some((index, count)) = opts.shard {
        let before = tasks.len();
        tasks = shard_tasks(tasks, index, count);
        if !opts.quiet && !opts.json {
            eprintln!(
                "stack: shard {index}/{count} owns {} of {before} modules",
                tasks.len()
            );
        }
    }
    if tasks.is_empty() {
        return fail("nothing to scan (no .mc/.c files found, or the shard is empty)");
    }
    let (session, store) = match opts.open_session() {
        Ok(pair) => pair,
        Err(e) => return fail(&e),
    };
    let scan_store = match opts.open_scan_store() {
        Ok(scan_store) => scan_store,
        Err(e) => return fail(&e),
    };
    let start = Instant::now();
    let mut reports = 0usize;
    let quiet = opts.quiet || opts.json;
    let mut pipeline = ScanPipeline::new(&session, opts.jobs);
    if let Some(scan_store) = &scan_store {
        pipeline = pipeline.with_scan_store(Arc::clone(scan_store));
    }
    let outcome = pipeline.run(&tasks, &mut |event| match event {
        ScanEvent::Report(report) => {
            reports += 1;
            if !quiet {
                print!("{report}");
            }
        }
        ScanEvent::Failure { name, error } => eprintln!("stack: {name}: {error}"),
    });
    let elapsed = start.elapsed();
    let stats = session.stats();
    let summary = ScanSummary {
        files: outcome.files,
        failures: outcome.failures,
        modules_skipped: outcome.modules_skipped,
        functions_skipped: outcome.functions_skipped,
        functions: stats.functions,
        reports,
        queries: stats.queries,
        degraded_queries: stats.timeouts,
        degraded_modules: stats.degraded_modules,
        timeouts: stats.timeouts,
        propagations: stats.propagations,
        conflicts: stats.conflicts,
        restarts: stats.restarts,
        learned_clauses: stats.learned_clauses,
        deleted_clauses: stats.deleted_clauses,
        avg_lbd: stats.avg_lbd(),
        preprocess_eliminations: stats.preprocess_eliminations,
        sat_queries: stats.sat_queries,
        unsat_queries: stats.unsat_queries,
        model_cache_hits: stats.model_cache_hits,
        core_cache_hits: stats.core_cache_hits,
        cores_recorded: stats.cores_recorded,
        avg_core_size: stats.avg_core_size(),
        hbr_binaries_added: stats.hbr_binaries_added,
        deleted_tier2: stats.deleted_tier2,
        deleted_local: stats.deleted_local,
        minimization_queries_saved: stats.minimization_queries_saved,
        store_hits: stats.cache_hits,
        store_misses: stats.cache_misses,
        store_hit_rate: stats.cache_hit_rate(),
        cache_file_loaded_entries: store.as_ref().map_or(0, |s| s.loaded_entries()),
        scan_cache_loaded_entries: scan_store.as_ref().map_or(0, |s| s.loaded_entries()),
        jobs: opts.jobs,
        shard_index: opts.shard.map_or(1, |(i, _)| i),
        shard_count: opts.shard.map_or(1, |(_, n)| n),
        elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
    };
    let rendered = if opts.json {
        match serde_json::to_string_pretty(&summary) {
            Ok(json) => json,
            Err(e) => return fail(&format!("cannot serialize summary: {e}")),
        }
    } else {
        render_scan_summary(&summary, &stats, scan_store.is_some())
    };
    match &opts.out {
        Some(out) => {
            if let Err(e) = write_output(out, &rendered) {
                return fail(&e);
            }
        }
        None => println!("{rendered}"),
    }
    if let Some(store) = &store {
        if let Err(e) = save_store(store, opts.quiet) {
            return fail(&e);
        }
    }
    if let Some(scan_store) = &scan_store {
        match scan_store.save() {
            Ok(entries) => {
                if !opts.quiet {
                    eprintln!(
                        "stack: saved {entries} function records to {}",
                        scan_store.path().display()
                    );
                }
            }
            Err(e) => {
                return fail(&format!(
                    "cannot save scan cache {}: {e}",
                    scan_store.path().display()
                ))
            }
        }
    }
    if outcome.failures > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Whether a path names a single source file `scan` should analyze directly
/// (rather than interpret as a manifest).
fn is_source_path(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("mc") | Some("c")
    )
}

/// Resolve what `scan` should analyze: `--synth N` generates the archive
/// population in memory; a directory is walked for `.mc`/`.c` files (sorted,
/// so runs are deterministic); a single `.mc`/`.c` path is scanned as-is;
/// any other path is read as a manifest listing one source path per line
/// (`#` comments allowed). Sources are returned as paths and only read once
/// a pipeline worker reaches them, so one unreadable file fails that file,
/// not the scan.
fn gather_scan_sources(args: &[String]) -> Result<Vec<ScanTask>, String> {
    if let Some(packages) = parse_flag_value::<usize>(args, "--synth")? {
        if packages == 0 {
            return Err("--synth needs a positive package count".to_string());
        }
        let cfg = stack_corpus::ArchiveConfig {
            packages,
            seed: parse_flag_value::<u64>(args, "--seed")?
                .unwrap_or(stack_corpus::ArchiveConfig::default().seed),
            ..stack_corpus::ArchiveConfig::default()
        };
        return Ok(stack_corpus::generate_archive(&cfg)
            .into_iter()
            .map(|f| ScanTask {
                name: f.name,
                source: ScanSource::Inline(f.source),
            })
            .collect());
    }
    let Some(root) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(
            "usage: stack scan <dir|manifest|file.mc> | --synth N  [--seed S] [--cache-file F] \
             [--scan-cache F] [--jobs N] [--threads N] [--query-budget N] [--compact-store N] \
             [--shard i/n] [--no-cache] [--no-incremental] [--no-core-cache] [--no-hbr] \
             [--include-macros] [--json] [--out F] [--quiet]"
                .to_string(),
        );
    };
    let root = PathBuf::from(root);
    let paths: Vec<PathBuf> = if root.is_dir() {
        let entries = std::fs::read_dir(&root)
            .map_err(|e| format!("cannot read directory {}: {e}", root.display()))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| is_source_path(p))
            .collect();
        paths.sort();
        paths
    } else if is_source_path(&root) {
        vec![root]
    } else {
        let manifest = std::fs::read_to_string(&root)
            .map_err(|e| format!("cannot read manifest {}: {e}", root.display()))?;
        manifest
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(PathBuf::from)
            .collect()
    };
    Ok(paths
        .into_iter()
        .map(|p| ScanTask {
            name: p.display().to_string(),
            source: ScanSource::Path(p),
        })
        .collect())
}

fn render_scan_summary(
    summary: &ScanSummary,
    stats: &CheckStats,
    incremental_scan: bool,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "scan summary");
    if summary.shard_count > 1 {
        let _ = writeln!(
            out,
            "  shard           {:>8}  (of {})",
            summary.shard_index, summary.shard_count
        );
    }
    let _ = writeln!(
        out,
        "  files           {:>8}  ({} failed)",
        summary.files, summary.failures
    );
    if incremental_scan {
        let _ = writeln!(
            out,
            "  skipped {} unchanged modules ({:.1}% of {})",
            summary.modules_skipped,
            100.0 * summary.modules_skipped as f64 / summary.files.max(1) as f64,
            summary.files
        );
        let _ = writeln!(
            out,
            "  replayed {} unchanged functions ({:.1}% of {})",
            summary.functions_skipped,
            100.0 * summary.functions_skipped as f64 / summary.functions.max(1) as f64,
            summary.functions
        );
    }
    let _ = writeln!(out, "  functions       {:>8}", summary.functions);
    let _ = writeln!(out, "  reports         {:>8}", summary.reports);
    let _ = writeln!(
        out,
        "  queries         {:>8}  ({} timeouts)",
        summary.queries, summary.timeouts
    );
    let _ = writeln!(
        out,
        "  verdicts        {:>8} sat / {} unsat / {} degraded / {} from model cache / {} from \
         core cache",
        summary.sat_queries,
        summary.unsat_queries,
        summary.degraded_queries,
        summary.model_cache_hits,
        summary.core_cache_hits
    );
    if summary.degraded_modules > 0 {
        let _ = writeln!(
            out,
            "  degraded        {:>8} module(s) hit the query budget ({} queries fell back to \
             Unknown; results not persisted)",
            summary.degraded_modules, summary.degraded_queries
        );
    }
    let _ = writeln!(
        out,
        "  solver          {:>8} propagations, {} conflicts, {} restarts",
        summary.propagations, summary.conflicts, summary.restarts
    );
    let _ = writeln!(
        out,
        "  clause db       {:>8} learned (avg LBD {:.1}, {} evicted), {} simplifications",
        summary.learned_clauses,
        summary.avg_lbd,
        summary.deleted_clauses,
        summary.preprocess_eliminations
    );
    let _ = writeln!(
        out,
        "  core cache      {:>8} hits, {} cores recorded (avg size {:.1}), {} minimization \
         queries saved",
        summary.core_cache_hits,
        summary.cores_recorded,
        summary.avg_core_size,
        summary.minimization_queries_saved
    );
    let _ = writeln!(
        out,
        "  hyper-binary    {:>8} binaries added; tier evictions: {} tier2, {} local",
        summary.hbr_binaries_added, summary.deleted_tier2, summary.deleted_local
    );
    let _ = writeln!(
        out,
        "  query store     {:>8} hits / {} misses ({:.1}% hit rate)",
        summary.store_hits,
        summary.store_misses,
        100.0 * summary.store_hit_rate
    );
    if summary.cache_file_loaded_entries > 0 {
        let _ = writeln!(
            out,
            "  cache file      {:>8} entries warm-started this scan",
            summary.cache_file_loaded_entries
        );
    }
    let _ = writeln!(
        out,
        "  elapsed         {:>8} ms  ({} job(s) x {} thread(s))",
        summary.elapsed_ms,
        summary.jobs,
        stats.threads.max(1)
    );
    out.trim_end().to_string()
}

// ---- store ------------------------------------------------------------------

/// Which persisted store a file holds, detected from its header line so
/// `store merge`/`store inspect` work on both kinds without a flag.
enum StoreKind {
    Query,
    Scan,
}

fn detect_store_kind(path: &Path) -> Result<StoreKind, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let first = text.lines().next().unwrap_or("");
    if first.starts_with("stack-query-store") {
        Ok(StoreKind::Query)
    } else if first.starts_with("stack-scan-store") {
        Ok(StoreKind::Scan)
    } else {
        Err(format!(
            "{}: not a stack store file (header `{first}`)",
            path.display()
        ))
    }
}

/// The positional (non-flag) arguments, skipping the values of
/// `value_flags`.
fn positionals(args: &[String], value_flags: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            i += if value_flags.contains(&arg.as_str()) {
                2
            } else {
                1
            };
        } else {
            out.push(arg.clone());
            i += 1;
        }
    }
    out
}

/// `MergeStats` in the shape `--json` emits (the vendored serde has no
/// map/foreign-type support, so the stats are restated locally).
#[derive(Serialize)]
struct MergeStatsJson {
    inputs: usize,
    entries_in: u64,
    entries_out: u64,
    duplicates: u64,
    pruned: u64,
    generation: u64,
}

fn cmd_store(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("merge") => cmd_store_merge(&args[1..]),
        Some("inspect") => cmd_store_inspect(&args[1..]),
        Some("fsck") => cmd_store_fsck(&args[1..]),
        _ => {
            eprintln!(
                "usage: stack store merge <out> <in...> [--compact N] [--json]\n\
                 usage: stack store inspect <file> [--json]\n\
                 usage: stack store fsck <file> [--repair] [--json]"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_store_merge(args: &[String]) -> ExitCode {
    let compact = match parse_flag_value::<u64>(args, "--compact") {
        Ok(Some(0)) => return fail("--compact needs a positive integer"),
        Ok(other) => other,
        Err(e) => return fail(&e),
    };
    let json = has_flag(args, "--json");
    let mut paths = positionals(args, &["--compact"]);
    if paths.len() < 2 {
        eprintln!("usage: stack store merge <out> <in...> [--compact N] [--json]");
        return ExitCode::from(2);
    }
    let out = PathBuf::from(paths.remove(0));
    let inputs: Vec<PathBuf> = paths.into_iter().map(PathBuf::from).collect();
    // Every input must be the kind the first one is; a mixed set trips the
    // merge's own header check with a found-vs-expected message.
    let stats = match detect_store_kind(&inputs[0]).and_then(|kind| {
        match kind {
            StoreKind::Query => DiskQueryStore::merge(&out, &inputs, compact),
            StoreKind::Scan => ScanStore::merge(&out, &inputs, compact),
        }
        .map_err(|e| e.to_string())
    }) {
        Ok(stats) => stats,
        Err(e) => return fail(&e),
    };
    if json {
        let stats = MergeStatsJson {
            inputs: stats.inputs,
            entries_in: stats.entries_in,
            entries_out: stats.entries_out,
            duplicates: stats.duplicates,
            pruned: stats.pruned,
            generation: stats.generation,
        };
        match serde_json::to_string_pretty(&stats) {
            Ok(json) => println!("{json}"),
            Err(e) => return fail(&format!("cannot serialize merge stats: {e}")),
        }
    } else {
        println!(
            "stack: merged {} stores into {}: {} entries in, {} out \
             ({} duplicates, {} pruned; generation {})",
            stats.inputs,
            out.display(),
            stats.entries_in,
            stats.entries_out,
            stats.duplicates,
            stats.pruned,
            stats.generation
        );
    }
    ExitCode::SUCCESS
}

/// One `last_used` histogram bucket of the `--json` inspection shape.
#[derive(Serialize)]
struct LastUsedJson {
    generation: u64,
    entries: u64,
}

/// `StoreInspection` in the shape `--json` emits.
#[derive(Serialize)]
struct InspectionJson {
    kind: String,
    format_version: u64,
    encoding_revision: u64,
    fingerprint_revision: Option<u64>,
    generation: u64,
    compatible: bool,
    malformed: bool,
    entries: u64,
    /// Leading entries readable before the first bad line (equals
    /// `entries` when the body is clean).
    salvageable_prefix: u64,
    /// Byte offset of the first undecodable line, when the body is damaged.
    first_bad_offset: Option<u64>,
    /// Body lines dropped by the salvage pass (0 when clean).
    dropped_lines: u64,
    last_used: Vec<LastUsedJson>,
}

fn cmd_store_inspect(args: &[String]) -> ExitCode {
    let json = has_flag(args, "--json");
    let paths = positionals(args, &[]);
    let [path] = paths.as_slice() else {
        eprintln!("usage: stack store inspect <file> [--json]");
        return ExitCode::from(2);
    };
    let path = PathBuf::from(path);
    let info = match detect_store_kind(&path).and_then(|kind| {
        match kind {
            StoreKind::Query => DiskQueryStore::inspect(&path),
            StoreKind::Scan => ScanStore::inspect(&path),
        }
        .map_err(|e| e.to_string())
    }) {
        Ok(info) => info,
        Err(e) => return fail(&e),
    };
    if json {
        let info = InspectionJson {
            kind: info.kind.to_string(),
            format_version: info.format_version,
            encoding_revision: info.encoding_revision,
            fingerprint_revision: info.fingerprint_revision,
            generation: info.generation,
            compatible: info.compatible,
            malformed: info.malformed,
            entries: info.entries,
            salvageable_prefix: info.salvageable_prefix,
            first_bad_offset: info.first_bad_offset,
            dropped_lines: info.dropped_lines,
            last_used: info
                .last_used
                .iter()
                .map(|(&generation, &entries)| LastUsedJson {
                    generation,
                    entries,
                })
                .collect(),
        };
        match serde_json::to_string_pretty(&info) {
            Ok(json) => println!("{json}"),
            Err(e) => return fail(&format!("cannot serialize inspection: {e}")),
        }
    } else {
        println!("{}", info.render());
    }
    ExitCode::SUCCESS
}

/// Either persisted store behind one handle, so `store fsck` shares a
/// single verdict path.
enum AnyStore {
    Query(Box<DiskQueryStore>),
    Scan(ScanStore),
}

impl AnyStore {
    fn open(path: &Path) -> Result<AnyStore, String> {
        let kind = detect_store_kind(path)?;
        match kind {
            StoreKind::Query => DiskQueryStore::open(path).map(|s| AnyStore::Query(Box::new(s))),
            StoreKind::Scan => ScanStore::open(path).map(AnyStore::Scan),
        }
        .map_err(|e| format!("cannot open {}: {e}", path.display()))
    }

    fn kind(&self) -> &'static str {
        match self {
            AnyStore::Query(_) => "query",
            AnyStore::Scan(_) => "scan",
        }
    }

    fn was_invalidated(&self) -> bool {
        match self {
            AnyStore::Query(s) => s.was_invalidated(),
            AnyStore::Scan(s) => s.was_invalidated(),
        }
    }

    fn salvage(&self) -> Option<stack_solver::SalvageReport> {
        match self {
            AnyStore::Query(s) => s.salvage().copied(),
            AnyStore::Scan(s) => s.salvage().copied(),
        }
    }

    fn loaded_entries(&self) -> u64 {
        match self {
            AnyStore::Query(s) => s.loaded_entries(),
            AnyStore::Scan(s) => s.loaded_entries(),
        }
    }

    fn save(&self) -> std::io::Result<usize> {
        match self {
            AnyStore::Query(s) => s.save(),
            AnyStore::Scan(s) => s.save(),
        }
    }
}

/// `store fsck` verdict in the shape `--json` emits.
#[derive(Serialize)]
struct FsckJson {
    kind: String,
    compatible: bool,
    clean: bool,
    repaired: bool,
    entries: u64,
    dropped_lines: u64,
    first_bad_offset: Option<u64>,
}

/// Check a persisted store for damage and optionally heal it. Exit 0 when
/// the store is clean (or was just repaired), 2 when damage remains — so
/// `fsck` composes with `fsck --repair` the way the system tool does. An
/// incompatible (foreign-revision) store is *never* repaired: its entries
/// cannot be trusted at all, and the next analysis run rewrites it cold.
fn cmd_store_fsck(args: &[String]) -> ExitCode {
    let json = has_flag(args, "--json");
    let repair = has_flag(args, "--repair");
    let paths = positionals(args, &[]);
    let [path] = paths.as_slice() else {
        eprintln!("usage: stack store fsck <file> [--repair] [--json]");
        return ExitCode::from(2);
    };
    let path = PathBuf::from(path);
    let store = match AnyStore::open(&path) {
        Ok(store) => store,
        Err(e) => return fail(&e),
    };
    if store.was_invalidated() {
        return fail(&format!(
            "{}: incompatible {} store (written by a different revision); not repairable — the \
             next analysis run starts cold and rewrites it",
            path.display(),
            store.kind()
        ));
    }
    let salvage = store.salvage();
    let damaged = salvage.is_some();
    let repaired = damaged && repair;
    if repaired {
        if let Err(e) = store.save() {
            return fail(&format!("cannot repair {}: {e}", path.display()));
        }
    }
    if json {
        let verdict = FsckJson {
            kind: store.kind().to_string(),
            compatible: true,
            clean: !damaged,
            repaired,
            entries: store.loaded_entries(),
            dropped_lines: salvage.map_or(0, |s| s.dropped_lines),
            first_bad_offset: salvage.and_then(|s| s.first_bad_offset),
        };
        match serde_json::to_string_pretty(&verdict) {
            Ok(json) => println!("{json}"),
            Err(e) => return fail(&format!("cannot serialize fsck verdict: {e}")),
        }
    } else {
        match &salvage {
            None => println!(
                "stack: {}: clean {} store ({} entries)",
                path.display(),
                store.kind(),
                store.loaded_entries()
            ),
            Some(salvage) if repaired => println!(
                "stack: {}: repaired {} store — kept {} entries, dropped {} bad line(s)",
                path.display(),
                store.kind(),
                store.loaded_entries(),
                salvage.dropped_lines
            ),
            Some(salvage) => println!(
                "stack: {}: {} (re-run with --repair to heal)",
                path.display(),
                render_salvage(salvage)
            ),
        }
    }
    if damaged && !repaired {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

// ---- bench ------------------------------------------------------------------

fn cmd_bench(args: &[String]) -> ExitCode {
    let out_path = match flag_value(args, "--out") {
        Ok(path) => path.unwrap_or("BENCH_checker.json").to_string(),
        Err(e) => return fail(&e),
    };
    let mut cfg = stack_bench::ScalingConfig::from_env();
    if has_flag(args, "--fast") {
        cfg = cfg.fast();
    }
    let results = stack_bench::checker_scaling(&cfg);
    print!("{}", results.render());
    let json = results.to_json();
    if let Err(e) = write_output(Path::new(&out_path), &json) {
        return fail(&e);
    }
    println!("  wrote {out_path}");
    ExitCode::SUCCESS
}

// ---- gen-archive ------------------------------------------------------------

fn cmd_gen_archive(args: &[String]) -> ExitCode {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: stack gen-archive <dir> [--packages N] [--seed S] [--edit-functions K]");
        return ExitCode::from(2);
    };
    let defaults = stack_corpus::ArchiveConfig::default();
    let (cfg, edit_functions) = match (
        parse_flag_value::<usize>(args, "--packages"),
        parse_flag_value::<u64>(args, "--seed"),
        parse_flag_value::<usize>(args, "--edit-functions"),
    ) {
        (Ok(packages), Ok(seed), Ok(edit_functions)) => (
            stack_corpus::ArchiveConfig {
                packages: packages.unwrap_or(defaults.packages),
                seed: seed.unwrap_or(defaults.seed),
                ..defaults
            },
            edit_functions.unwrap_or(0),
        ),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return fail(&e),
    };
    // Validate the (deterministic) population before a single file is
    // written: a generator bug surfaces as one clean error, not a panic
    // mid-write or a half-materialized archive. With --edit-functions K
    // (the "developer touched K functions, now re-scan" workload), the
    // edited population is what gets validated and written.
    let mut files = stack_corpus::generate_archive(&cfg);
    if edit_functions > 0 {
        files = stack_corpus::churn_functions_count(&files, cfg.seed, edit_functions).files;
    }
    if let Err(e) = stack_corpus::validate_sources(
        files.iter().map(|f| (f.name.as_str(), f.source.as_str())),
        |name, source| stack_minic::compile(source, name).map(|_| ()),
    ) {
        return fail(&format!("generated archive does not compile: {e}"));
    }
    match stack_corpus::write_archive_edited(&cfg, Path::new(dir), edit_functions) {
        Ok(paths) => {
            println!(
                "stack: wrote {} archive files ({} packages, seed {}{}) under {dir}",
                paths.len(),
                cfg.packages,
                cfg.seed,
                if edit_functions > 0 {
                    format!(", {edit_functions} functions edited")
                } else {
                    String::new()
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("cannot write archive under {dir}: {e}")),
    }
}

// ---- demo / list / survey ---------------------------------------------------

fn cmd_demo(args: &[String]) -> ExitCode {
    let Some(id) = args.first() else {
        eprintln!("usage: stack demo <pattern-id>   (see `stack list`)");
        return ExitCode::from(2);
    };
    let Some(pattern) = stack_corpus::all_patterns()
        .into_iter()
        .find(|p| p.id == *id)
    else {
        eprintln!("stack: unknown pattern `{id}` (see `stack list`)");
        return ExitCode::from(2);
    };
    println!(
        "// {} ({})\n{}\n",
        pattern.id, pattern.paper_ref, pattern.source
    );
    match Checker::new().check_source(pattern.source, &format!("{id}.c")) {
        Ok(result) => {
            for report in &result.reports {
                print!("{report}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("built-in pattern `{id}` failed to compile: {e}")),
    }
}

fn cmd_list() -> ExitCode {
    for p in stack_corpus::all_patterns() {
        println!("{:<36} {}", p.id, p.paper_ref);
    }
    ExitCode::SUCCESS
}

fn cmd_survey() -> ExitCode {
    let src = "int f(int x) { if (x + 100 < x) return 1; return 0; }";
    println!("check: if (x + 100 < x)");
    for profile in survey_compilers() {
        let level = lowest_discarding_level(src, "f", &profile);
        println!(
            "  {:<18} {}",
            profile.name,
            level.map(|l| format!("O{l}")).unwrap_or_else(|| "–".into())
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_combinations_are_validated_before_any_work() {
        // The bug this guards: --compact-store without --cache-file used to
        // surface only after the scan completed.
        let err = AnalysisOpts::parse(&args(&["dir", "--compact-store", "3"]), Mode::Scan)
            .expect_err("must reject up front");
        assert!(err.contains("--cache-file"), "{err}");

        for flag in SCAN_ONLY_FLAGS {
            let err = AnalysisOpts::parse(&args(&["f.mc", flag, "1"]), Mode::Check)
                .expect_err("check must reject scan-only flags");
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("scan-only"), "{err}");
        }
        // The same flags parse fine under scan (with a cache file where
        // required).
        assert!(AnalysisOpts::parse(
            &args(&[
                "dir",
                "--jobs",
                "4",
                "--shard",
                "2/4",
                "--scan-cache",
                "s.ss"
            ]),
            Mode::Scan
        )
        .is_ok());
    }

    #[test]
    fn shard_flag_parses_and_rejects() {
        assert_eq!(parse_shard("1/1").unwrap(), (1, 1));
        assert_eq!(parse_shard("2/4").unwrap(), (2, 4));
        for bad in ["0/4", "5/4", "2", "a/b", "2/0", "/", ""] {
            assert!(parse_shard(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn shards_partition_the_task_list() {
        let tasks: Vec<ScanTask> = (0..32)
            .map(|i| ScanTask {
                name: format!("m{i}.mc"),
                source: ScanSource::Inline(format!("int f{i}(void) {{ return {i}; }}\n")),
            })
            .collect();
        let count = 4;
        let mut seen = Vec::new();
        for index in 1..=count {
            let shard = shard_tasks(tasks.clone(), index, count);
            // Shard assignment is deterministic: re-sharding agrees.
            let again = shard_tasks(tasks.clone(), index, count);
            assert_eq!(
                shard.iter().map(|t| &t.name).collect::<Vec<_>>(),
                again.iter().map(|t| &t.name).collect::<Vec<_>>()
            );
            seen.extend(shard.into_iter().map(|t| t.name));
        }
        // Together the shards cover every task exactly once.
        seen.sort();
        let mut all: Vec<String> = tasks.iter().map(|t| t.name.clone()).collect();
        all.sort();
        assert_eq!(seen, all);
    }

    #[test]
    fn shard_assignment_ignores_task_position() {
        let tasks: Vec<ScanTask> = (0..8)
            .map(|i| ScanTask {
                name: format!("m{i}.mc"),
                source: ScanSource::Inline(format!("int f{i}(void) {{ return {i}; }}\n")),
            })
            .collect();
        let mut reversed = tasks.clone();
        reversed.reverse();
        for index in 1..=4 {
            let mut a: Vec<String> = shard_tasks(tasks.clone(), index, 4)
                .into_iter()
                .map(|t| t.name)
                .collect();
            let mut b: Vec<String> = shard_tasks(reversed.clone(), index, 4)
                .into_iter()
                .map(|t| t.name)
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "membership is keyed by content, not position");
        }
    }

    #[test]
    fn positionals_skip_flag_values() {
        let list = args(&["out.qs", "--compact", "3", "a.qs", "--json", "b.qs"]);
        assert_eq!(
            positionals(&list, &["--compact"]),
            vec!["out.qs", "a.qs", "b.qs"]
        );
    }
}
