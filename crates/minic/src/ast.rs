//! Abstract syntax tree of the mini-C language.

/// Source-level types. `Pointer` is typed so that pointer arithmetic can be
/// scaled by the element size and array declarations can record bounds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CType {
    Void,
    Bool,
    /// Integer with a width in bits and a signedness flag.
    Int {
        width: u32,
        signed: bool,
    },
    /// Pointer to an element type.
    Pointer(Box<CType>),
}

impl CType {
    /// `int`
    pub fn int() -> CType {
        CType::Int {
            width: 32,
            signed: true,
        }
    }

    /// `unsigned int`
    pub fn uint() -> CType {
        CType::Int {
            width: 32,
            signed: false,
        }
    }

    /// `long` / `int64_t`
    pub fn long() -> CType {
        CType::Int {
            width: 64,
            signed: true,
        }
    }

    /// `unsigned long` / `uint64_t` / `size_t`
    pub fn ulong() -> CType {
        CType::Int {
            width: 64,
            signed: false,
        }
    }

    /// `char`
    pub fn char_ty() -> CType {
        CType::Int {
            width: 8,
            signed: true,
        }
    }

    /// `T*`
    pub fn ptr_to(elem: CType) -> CType {
        CType::Pointer(Box::new(elem))
    }

    /// Whether the type is any pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Pointer(_))
    }

    /// Whether the type is a signed integer.
    pub fn is_signed_int(&self) -> bool {
        matches!(self, CType::Int { signed: true, .. })
    }

    /// Integer width, if an integer type.
    pub fn int_width(&self) -> Option<u32> {
        match self {
            CType::Int { width, .. } => Some(*width),
            CType::Bool => Some(1),
            _ => None,
        }
    }

    /// Size in bytes when stored in memory.
    pub fn byte_size(&self) -> u64 {
        match self {
            CType::Void => 0,
            CType::Bool => 1,
            CType::Int { width, .. } => u64::from(width / 8).max(1),
            CType::Pointer(_) => 8,
        }
    }

    /// The element type a pointer points to (or `Void` if not a pointer).
    pub fn pointee(&self) -> CType {
        match self {
            CType::Pointer(inner) => (**inner).clone(),
            _ => CType::Void,
        }
    }
}

/// Binary operators at the source level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOpKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOpKind {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise complement `~x`.
    BitNot,
    /// Pointer dereference `*p`.
    Deref,
    /// Address-of `&x`.
    AddrOf,
}

/// Source position of an AST node plus macro provenance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub column: u32,
    pub from_macro: Option<String>,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    IntLit {
        value: i64,
        span: Span,
    },
    /// The null pointer constant.
    Null {
        span: Span,
    },
    /// Variable reference.
    Var {
        name: String,
        span: Span,
    },
    Unary {
        op: UnOpKind,
        operand: Box<Expr>,
        span: Span,
    },
    Binary {
        op: BinOpKind,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    /// `cond ? then : els`
    Conditional {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
        span: Span,
    },
    /// `base[index]`
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        span: Span,
    },
    /// `p->field` (field-insensitive: modeled as a load through `p`).
    Member {
        base: Box<Expr>,
        field: String,
        span: Span,
    },
    Call {
        callee: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// `(type)expr`
    Cast {
        ty: CType,
        operand: Box<Expr>,
        span: Span,
    },
    /// Assignment (also used for `+=` and `-=` after desugaring).
    Assign {
        target: Box<Expr>,
        value: Box<Expr>,
        span: Span,
    },
    /// Post-increment `x++` (desugared during lowering).
    PostIncrement {
        target: Box<Expr>,
        span: Span,
    },
    /// `sizeof(type)` — folded to a constant during lowering.
    SizeOf {
        ty: CType,
        span: Span,
    },
}

impl Expr {
    /// The span of an expression.
    pub fn span(&self) -> &Span {
        match self {
            Expr::IntLit { span, .. }
            | Expr::Null { span }
            | Expr::Var { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Conditional { span, .. }
            | Expr::Index { span, .. }
            | Expr::Member { span, .. }
            | Expr::Call { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Assign { span, .. }
            | Expr::PostIncrement { span, .. }
            | Expr::SizeOf { span, .. } => span,
        }
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Local declaration, possibly an array, possibly initialized.
    Decl {
        name: String,
        ty: CType,
        /// Array element count if declared as `T name[N]`.
        array: Option<u64>,
        init: Option<Expr>,
        span: Span,
    },
    Expr(Expr),
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        span: Span,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
        span: Span,
    },
    Return {
        value: Option<Expr>,
        span: Span,
    },
    Block(Vec<Stmt>),
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncParam {
    pub name: String,
    pub ty: CType,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<FuncParam>,
    pub ret_ty: CType,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// A translation unit: the functions defined in one source file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TranslationUnit {
    pub functions: Vec<FuncDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctype_helpers() {
        assert_eq!(CType::int().int_width(), Some(32));
        assert_eq!(CType::long().byte_size(), 8);
        assert_eq!(CType::char_ty().byte_size(), 1);
        assert!(CType::int().is_signed_int());
        assert!(!CType::uint().is_signed_int());
        let p = CType::ptr_to(CType::int());
        assert!(p.is_pointer());
        assert_eq!(p.pointee(), CType::int());
        assert_eq!(p.byte_size(), 8);
        assert_eq!(CType::Bool.int_width(), Some(1));
    }

    #[test]
    fn expr_span_access() {
        let e = Expr::IntLit {
            value: 3,
            span: Span {
                line: 2,
                column: 5,
                from_macro: None,
            },
        };
        assert_eq!(e.span().line, 2);
    }
}
