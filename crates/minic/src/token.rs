//! Tokens of the mini-C language.

use std::fmt;

/// A token kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    // Literals and identifiers.
    Ident(String),
    IntLit(i64),
    CharLit(u8),
    StrLit(String),

    // Keywords.
    KwInt,
    KwLong,
    KwShort,
    KwChar,
    KwUnsigned,
    KwSigned,
    KwVoid,
    KwBool,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwStruct,
    KwConst,
    KwSizeof,
    KwNull,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Arrow, // ->
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Question,
    Colon,
    Assign,      // =
    PlusAssign,  // +=
    MinusAssign, // -=
    Eq,          // ==
    Ne,          // !=
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    PlusPlus,
    MinusMinus,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::IntLit(v) => write!(f, "{v}"),
            Tok::CharLit(c) => write!(f, "'{}'", *c as char),
            Tok::StrLit(s) => write!(f, "\"{s}\""),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token together with its source position and macro provenance.
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub column: u32,
    /// If the token was produced by expanding a macro, the macro's name.
    pub from_macro: Option<String>,
}

impl Token {
    /// Create a token at a position.
    pub fn new(tok: Tok, line: u32, column: u32) -> Token {
        Token {
            tok,
            line,
            column,
            from_macro: None,
        }
    }
}
