//! `stack-minic` — a mini-C frontend.
//!
//! This crate stands in for the clang frontend in the STACK pipeline
//! (paper §4.2): it lexes, preprocesses, parses, and lowers a C-like language
//! into the `stack-ir` intermediate representation. The language covers the
//! constructs that appear in the paper's unstable-code examples — pointers
//! and pointer arithmetic, signed/unsigned integers of all widths, arrays
//! with declared bounds, short-circuit control flow, the library calls of
//! Figure 3 — plus `#define` macros with origin tracking so the checker can
//! tell programmer-written code from macro-expanded code.
//!
//! The one-call entry point is [`compile`], which returns an IR module.

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use ast::{BinOpKind, CType, Expr, FuncDef, FuncParam, Span, Stmt, TranslationUnit, UnOpKind};
pub use diag::Diag;
pub use lexer::lex;
pub use lower::{compile, ctype_to_ir, lower};
pub use parser::parse;
pub use token::{Tok, Token};
