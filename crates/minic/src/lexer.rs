//! Lexer and preprocessor for the mini-C language.
//!
//! The preprocessor supports object-like and function-like `#define` macros.
//! Tokens produced by macro expansion are tagged with the macro's name so the
//! lowering stage can mark the resulting IR as compiler-generated — the
//! mechanism STACK uses to avoid warning about unstable code the programmer
//! did not write (paper §4.2).

use crate::diag::Diag;
use crate::token::{Tok, Token};
use std::collections::HashMap;

/// A `#define` macro definition.
#[derive(Clone, Debug)]
struct MacroDef {
    /// Parameter names for function-like macros, `None` for object-like.
    params: Option<Vec<String>>,
    /// The replacement token sequence.
    body: Vec<Token>,
}

/// Tokenize a source string without macro expansion.
fn tokenize_raw(src: &str) -> Result<Vec<Token>, Diag> {
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut out = Vec::new();

    let keyword = |s: &str| -> Option<Tok> {
        Some(match s {
            "int" => Tok::KwInt,
            "long" => Tok::KwLong,
            "short" => Tok::KwShort,
            "char" => Tok::KwChar,
            "unsigned" => Tok::KwUnsigned,
            "signed" => Tok::KwSigned,
            "void" => Tok::KwVoid,
            "bool" | "_Bool" => Tok::KwBool,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "for" => Tok::KwFor,
            "return" => Tok::KwReturn,
            "struct" => Tok::KwStruct,
            "const" => Tok::KwConst,
            "sizeof" => Tok::KwSizeof,
            "NULL" => Tok::KwNull,
            _ => return None,
        })
    };

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, col: &mut u32| {
            *i += 1;
            *col += 1;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => advance(&mut i, &mut col),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                i += 2;
                col += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                i += 2;
                col += 2;
            }
            '#' => {
                // Preprocessor directives are line-oriented; emit a synthetic
                // identifier token "#directive" followed by the rest of the
                // line's tokens so `preprocess` can interpret it.
                let mut text = String::new();
                i += 1; // skip the leading '#'
                col += 1;
                while i < bytes.len() && bytes[i] != '\n' {
                    // Line continuation.
                    if bytes[i] == '\\' && i + 1 < bytes.len() && bytes[i + 1] == '\n' {
                        i += 2;
                        line += 1;
                        col = 1;
                        continue;
                    }
                    text.push(bytes[i]);
                    i += 1;
                    col += 1;
                }
                out.push(Token::new(
                    Tok::StrLit(format!("#{tline}#{text}")),
                    tline,
                    tcol,
                ));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    s.push(bytes[i]);
                    advance(&mut i, &mut col);
                }
                let tok = keyword(&s).unwrap_or(Tok::Ident(s));
                out.push(Token::new(tok, tline, tcol));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == 'x')
                {
                    s.push(bytes[i]);
                    advance(&mut i, &mut col);
                }
                // Strip integer suffixes (U, L, UL, LL, ULL).
                let trimmed = s.trim_end_matches(['u', 'U', 'l', 'L']);
                let value =
                    if let Some(hex) = trimmed.strip_prefix("0x").or(trimmed.strip_prefix("0X")) {
                        i64::from_str_radix(hex, 16)
                            .or_else(|_| u64::from_str_radix(hex, 16).map(|v| v as i64))
                    } else {
                        trimmed
                            .parse::<i64>()
                            .or_else(|_| trimmed.parse::<u64>().map(|v| v as i64))
                    };
                match value {
                    Ok(v) => out.push(Token::new(Tok::IntLit(v), tline, tcol)),
                    Err(_) => {
                        return Err(Diag::new(
                            format!("invalid integer literal `{s}`"),
                            tline,
                            tcol,
                        ))
                    }
                }
            }
            '\'' => {
                // Character literal (single char or simple escape).
                i += 1;
                col += 1;
                let ch = if bytes[i] == '\\' {
                    i += 1;
                    col += 1;
                    match bytes[i] {
                        'n' => b'\n',
                        't' => b'\t',
                        '0' => 0,
                        other => other as u8,
                    }
                } else {
                    bytes[i] as u8
                };
                i += 2; // skip char and closing quote
                col += 2;
                out.push(Token::new(Tok::CharLit(ch), tline, tcol));
            }
            '"' => {
                i += 1;
                col += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != '"' {
                    s.push(bytes[i]);
                    advance(&mut i, &mut col);
                }
                i += 1;
                col += 1;
                out.push(Token::new(Tok::StrLit(s), tline, tcol));
            }
            _ => {
                let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
                let (tok, len) = match two.as_str() {
                    "->" => (Tok::Arrow, 2),
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    "++" => (Tok::PlusPlus, 2),
                    "--" => (Tok::MinusMinus, 2),
                    "+=" => (Tok::PlusAssign, 2),
                    "-=" => (Tok::MinusAssign, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ';' => Tok::Semi,
                            ',' => Tok::Comma,
                            '.' => Tok::Dot,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '~' => Tok::Tilde,
                            '!' => Tok::Bang,
                            '?' => Tok::Question,
                            ':' => Tok::Colon,
                            '=' => Tok::Assign,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            other => {
                                return Err(Diag::new(
                                    format!("unexpected character `{other}`"),
                                    tline,
                                    tcol,
                                ))
                            }
                        };
                        (t, 1)
                    }
                };
                i += len;
                col += len as u32;
                out.push(Token::new(tok, tline, tcol));
            }
        }
    }
    out.push(Token::new(Tok::Eof, line, col));
    Ok(out)
}

/// Tokenize and run the preprocessor (macro definition and expansion).
pub fn lex(src: &str) -> Result<Vec<Token>, Diag> {
    let raw = tokenize_raw(src)?;
    preprocess(raw)
}

/// Expand `#define` macros in a raw token stream.
fn preprocess(tokens: Vec<Token>) -> Result<Vec<Token>, Diag> {
    let mut macros: HashMap<String, MacroDef> = HashMap::new();
    let mut out: Vec<Token> = Vec::new();
    let mut i = 0usize;

    while i < tokens.len() {
        let t = tokens[i].clone();
        // Directive tokens were packed into StrLit("#<line>#<text>") by the lexer.
        if let Tok::StrLit(s) = &t.tok {
            if let Some(rest) = s.strip_prefix('#') {
                if let Some((line_str, text)) = rest.split_once('#') {
                    let dline: u32 = line_str.parse().unwrap_or(t.line);
                    let text = text.trim();
                    if let Some(def) = text
                        .strip_prefix("define ")
                        .or(text.strip_prefix("define\t"))
                    {
                        let (name, def_macro) = parse_define(def, dline)?;
                        macros.insert(name, def_macro);
                    }
                    // Other directives (#include, #ifdef, ...) are ignored.
                    i += 1;
                    continue;
                }
            }
        }
        // Macro expansion.
        if let Tok::Ident(name) = &t.tok {
            if let Some(def) = macros.get(name).cloned() {
                match &def.params {
                    None => {
                        let expanded =
                            substitute(&def.body, &HashMap::new(), name, t.line, t.column);
                        out.extend(expanded);
                        i += 1;
                        continue;
                    }
                    Some(params) => {
                        // Function-like: only expand when followed by '('.
                        if i + 1 < tokens.len() && tokens[i + 1].tok == Tok::LParen {
                            let (args, consumed) = collect_macro_args(&tokens, i + 1)?;
                            if args.len() != params.len() {
                                return Err(Diag::new(
                                    format!(
                                        "macro {name} expects {} arguments, got {}",
                                        params.len(),
                                        args.len()
                                    ),
                                    t.line,
                                    t.column,
                                ));
                            }
                            let mut bind: HashMap<String, Vec<Token>> = HashMap::new();
                            for (p, a) in params.iter().zip(args) {
                                bind.insert(p.clone(), a);
                            }
                            let expanded = substitute(&def.body, &bind, name, t.line, t.column);
                            out.extend(expanded);
                            i += 1 + consumed;
                            continue;
                        }
                    }
                }
            }
        }
        out.push(t);
        i += 1;
    }
    Ok(out)
}

/// Parse the text after `#define`.
fn parse_define(def: &str, line: u32) -> Result<(String, MacroDef), Diag> {
    let def = def.trim();
    // Name is the leading identifier.
    let name_end = def
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(def.len());
    let name = def[..name_end].to_string();
    if name.is_empty() {
        return Err(Diag::new("malformed #define".to_string(), line, 1));
    }
    let rest = &def[name_end..];
    // Function-like only if '(' immediately follows the name.
    if let Some(stripped) = rest.strip_prefix('(') {
        let close = stripped
            .find(')')
            .ok_or_else(|| Diag::new("unterminated macro parameter list".to_string(), line, 1))?;
        let params: Vec<String> = stripped[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let body_src = &stripped[close + 1..];
        let mut body = tokenize_raw(body_src)?;
        body.pop(); // Eof
        for t in &mut body {
            t.line = line;
        }
        Ok((
            name,
            MacroDef {
                params: Some(params),
                body,
            },
        ))
    } else {
        let mut body = tokenize_raw(rest)?;
        body.pop(); // Eof
        for t in &mut body {
            t.line = line;
        }
        Ok((name, MacroDef { params: None, body }))
    }
}

/// Collect the argument token lists of a function-like macro invocation.
/// `start` indexes the opening parenthesis. Returns the arguments and the
/// number of tokens consumed starting at `start`.
fn collect_macro_args(tokens: &[Token], start: usize) -> Result<(Vec<Vec<Token>>, usize), Diag> {
    debug_assert_eq!(tokens[start].tok, Tok::LParen);
    let mut depth = 0usize;
    let mut args: Vec<Vec<Token>> = vec![Vec::new()];
    let mut i = start;
    loop {
        if i >= tokens.len() {
            return Err(Diag::new(
                "unterminated macro invocation".to_string(),
                tokens[start].line,
                tokens[start].column,
            ));
        }
        match &tokens[i].tok {
            Tok::LParen => {
                if depth > 0 {
                    args.last_mut().unwrap().push(tokens[i].clone());
                }
                depth += 1;
            }
            Tok::RParen => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                args.last_mut().unwrap().push(tokens[i].clone());
            }
            Tok::Comma if depth == 1 => args.push(Vec::new()),
            _ => args.last_mut().unwrap().push(tokens[i].clone()),
        }
        i += 1;
    }
    if args.len() == 1 && args[0].is_empty() {
        args.clear();
    }
    Ok((args, i - start + 1))
}

/// Substitute macro parameters in a body and tag all produced tokens with the
/// macro name and the invocation location.
fn substitute(
    body: &[Token],
    bind: &HashMap<String, Vec<Token>>,
    macro_name: &str,
    line: u32,
    column: u32,
) -> Vec<Token> {
    let mut out = Vec::new();
    for t in body {
        match &t.tok {
            Tok::Ident(name) if bind.contains_key(name) => {
                for a in &bind[name] {
                    let mut tok = a.clone();
                    // Argument tokens come from the call site; they keep their
                    // own provenance (the programmer wrote them).
                    tok.line = line;
                    tok.column = column;
                    out.push(tok);
                }
            }
            _ => {
                let mut tok = t.clone();
                tok.line = line;
                tok.column = column;
                tok.from_macro = Some(macro_name.to_string());
                out.push(tok);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_tokens() {
        let toks = lex("int x = a + 0x10 << 2; // comment\n").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::KwInt));
        assert!(matches!(kinds[1], Tok::Ident(s) if s == "x"));
        assert!(matches!(kinds[2], Tok::Assign));
        assert!(matches!(kinds[4], Tok::Plus));
        assert!(matches!(kinds[5], Tok::IntLit(16)));
        assert!(matches!(kinds[6], Tok::Shl));
        assert!(matches!(kinds.last().unwrap(), Tok::Eof));
    }

    #[test]
    fn lex_operators_and_positions() {
        let toks = lex("p->sk != NULL && x >= -2").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[1], Tok::Arrow));
        assert!(matches!(kinds[3], Tok::Ne));
        assert!(matches!(kinds[4], Tok::KwNull));
        assert!(matches!(kinds[5], Tok::AndAnd));
        assert!(matches!(kinds[7], Tok::Ge));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].column, 1);
    }

    #[test]
    fn block_comments_and_lines() {
        let toks = lex("int a; /* multi\nline */ int b;").unwrap();
        let idents: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
        // `b` is on line 2.
        let b_tok = toks
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "b"))
            .unwrap();
        assert_eq!(b_tok.line, 2);
    }

    #[test]
    fn object_like_macro() {
        let toks = lex("#define LIMIT 100\nint x = LIMIT;").unwrap();
        let lit = toks
            .iter()
            .find(|t| matches!(t.tok, Tok::IntLit(100)))
            .unwrap();
        assert_eq!(lit.from_macro.as_deref(), Some("LIMIT"));
    }

    #[test]
    fn function_like_macro_tags_body_not_args() {
        // The IS_A example of paper §4.2: the null check inside the macro is
        // compiler-generated from the programmer's viewpoint.
        let src =
            "#define IS_A(p) (p != NULL && LOAD(p) == 1)\n#define LOAD(p) (*p)\nint r = IS_A(q);";
        let toks = lex(src).unwrap();
        // The != token must be tagged as from IS_A; the identifier q must not.
        let ne = toks.iter().find(|t| t.tok == Tok::Ne).unwrap();
        assert_eq!(ne.from_macro.as_deref(), Some("IS_A"));
        let q = toks
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "q"))
            .unwrap();
        assert!(q.from_macro.is_none());
    }

    #[test]
    fn nested_macro_invocation_arguments() {
        let src = "#define ADD(a, b) (a + b)\nint y = ADD(f(1, 2), 3);";
        let toks = lex(src).unwrap();
        // The expansion contains f, (, 1, ,, 2, ), +, 3.
        let plus_count = toks.iter().filter(|t| t.tok == Tok::Plus).count();
        assert_eq!(plus_count, 1);
        let f_tok = toks
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "f"))
            .unwrap();
        assert!(f_tok.from_macro.is_none());
    }

    #[test]
    fn char_and_string_literals() {
        let toks = lex("char c = '.'; char n = '\\n';").unwrap();
        let chars: Vec<u8> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::CharLit(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(chars, vec![b'.', b'\n']);
    }

    #[test]
    fn integer_suffixes_and_negatives() {
        let toks = lex("long x = 9223372036854775807LL; int y = 0xFFu;").unwrap();
        let lits: Vec<i64> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::IntLit(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec![i64::MAX, 255]);
    }

    #[test]
    fn error_on_bad_character() {
        assert!(lex("int a = `;").is_err());
    }
}
