//! Recursive-descent parser for the mini-C language.
//!
//! The grammar covers the subset of C needed to express the paper's unstable
//! code examples: function definitions, local declarations (including fixed
//! size arrays), pointers, the usual statement forms, and the full C
//! expression operator set minus a few rarities. `struct` types are parsed
//! opaquely (only pointers to them can be formed); member access through a
//! pointer is supported field-insensitively.

use crate::ast::*;
use crate::diag::Diag;
use crate::token::{Tok, Token};

/// Parse a token stream into a translation unit.
pub fn parse(tokens: &[Token]) -> Result<TranslationUnit, Diag> {
    let mut p = Parser { tokens, pos: 0 };
    p.translation_unit()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, offset: usize) -> &Tok {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].tok
    }

    fn cur_token(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn span(&self) -> Span {
        let t = self.cur_token();
        Span {
            line: t.line,
            column: t.column,
            from_macro: t.from_macro.clone(),
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, msg: &str) -> Result<T, Diag> {
        let t = self.cur_token();
        Err(Diag::new(
            format!("{msg}, found `{}`", t.tok),
            t.line,
            t.column,
        ))
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Token, Diag> {
        if *self.peek() == tok {
            Ok(self.bump())
        } else {
            self.error(&format!("expected {what}"))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- Types ----------------------------------------------------------------

    /// Whether the upcoming tokens start a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt
                | Tok::KwLong
                | Tok::KwShort
                | Tok::KwChar
                | Tok::KwUnsigned
                | Tok::KwSigned
                | Tok::KwVoid
                | Tok::KwBool
                | Tok::KwStruct
                | Tok::KwConst
        ) || matches!(self.peek(), Tok::Ident(name) if is_typedef_name(name))
    }

    /// Parse a type (base type plus any number of `*`).
    fn parse_type(&mut self) -> Result<CType, Diag> {
        while self.eat(Tok::KwConst) {}
        let mut signed = true;
        let mut saw_sign = false;
        loop {
            match self.peek() {
                Tok::KwUnsigned => {
                    signed = false;
                    saw_sign = true;
                    self.bump();
                }
                Tok::KwSigned => {
                    signed = true;
                    saw_sign = true;
                    self.bump();
                }
                Tok::KwConst => {
                    self.bump();
                }
                _ => break,
            }
        }
        let mut base = match self.peek().clone() {
            Tok::KwVoid => {
                self.bump();
                CType::Void
            }
            Tok::KwBool => {
                self.bump();
                CType::Bool
            }
            Tok::KwChar => {
                self.bump();
                CType::Int { width: 8, signed }
            }
            Tok::KwShort => {
                self.bump();
                self.eat(Tok::KwInt);
                CType::Int { width: 16, signed }
            }
            Tok::KwInt => {
                self.bump();
                CType::Int { width: 32, signed }
            }
            Tok::KwLong => {
                self.bump();
                self.eat(Tok::KwLong); // long long
                self.eat(Tok::KwInt);
                CType::Int { width: 64, signed }
            }
            Tok::KwStruct => {
                self.bump();
                // Opaque struct: consume the tag name.
                if let Tok::Ident(_) = self.peek() {
                    self.bump();
                }
                // A bare struct value type is not supported; only pointers to
                // it. Treat the struct itself as void so `struct T *` works.
                CType::Void
            }
            Tok::Ident(name) if is_typedef_name(&name) => {
                self.bump();
                typedef_type(&name)
            }
            _ if saw_sign => CType::Int { width: 32, signed },
            _ => return self.error("expected a type"),
        };
        // If only `unsigned`/`signed` was given, adjust signedness of typedefs
        // (e.g. `unsigned` alone).
        if let CType::Int { width, .. } = base {
            if saw_sign {
                base = CType::Int { width, signed };
            }
        }
        loop {
            while self.eat(Tok::KwConst) {}
            if self.eat(Tok::Star) {
                base = CType::ptr_to(base);
            } else {
                break;
            }
        }
        Ok(base)
    }

    // ---- Top level ---------------------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, Diag> {
        let mut unit = TranslationUnit::default();
        while *self.peek() != Tok::Eof {
            // Skip stray string literal tokens (unprocessed directives).
            if matches!(self.peek(), Tok::StrLit(_)) {
                self.bump();
                continue;
            }
            // struct declarations `struct X { ... };` are skipped opaquely.
            if *self.peek() == Tok::KwStruct && *self.peek_at(2) == Tok::LBrace {
                self.skip_struct_decl()?;
                continue;
            }
            let span = self.span();
            let ret_ty = self.parse_type()?;
            let name = match self.bump().tok {
                Tok::Ident(s) => s,
                other => {
                    return Err(Diag::new(
                        format!("expected function name, found `{other}`"),
                        span.line,
                        span.column,
                    ))
                }
            };
            self.expect(Tok::LParen, "`(`")?;
            let mut params = Vec::new();
            if *self.peek() != Tok::RParen {
                loop {
                    if self.eat(Tok::KwVoid) && *self.peek() == Tok::RParen {
                        break;
                    }
                    let ty = self.parse_type()?;
                    let pname = match self.bump().tok {
                        Tok::Ident(s) => s,
                        other => {
                            return Err(Diag::new(
                                format!("expected parameter name, found `{other}`"),
                                span.line,
                                span.column,
                            ))
                        }
                    };
                    params.push(FuncParam { name: pname, ty });
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen, "`)`")?;
            if self.eat(Tok::Semi) {
                // Prototype: record nothing (calls to it default sensibly).
                continue;
            }
            self.expect(Tok::LBrace, "`{`")?;
            let body = self.block_body()?;
            unit.functions.push(FuncDef {
                name,
                params,
                ret_ty,
                body,
                span,
            });
        }
        Ok(unit)
    }

    fn skip_struct_decl(&mut self) -> Result<(), Diag> {
        self.expect(Tok::KwStruct, "`struct`")?;
        self.bump(); // tag
        self.expect(Tok::LBrace, "`{`")?;
        let mut depth = 1;
        while depth > 0 {
            match self.bump().tok {
                Tok::LBrace => depth += 1,
                Tok::RBrace => depth -= 1,
                Tok::Eof => return self.error("unterminated struct declaration"),
                _ => {}
            }
        }
        self.eat(Tok::Semi);
        Ok(())
    }

    // ---- Statements ----------------------------------------------------------------

    /// Parse statements until the matching `}` (which is consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>, Diag> {
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return self.error("unterminated block");
            }
            stmts.push(self.statement()?);
        }
        self.expect(Tok::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, Diag> {
        let span = self.span();
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                let cond = self.expression()?;
                self.expect(Tok::RParen, "`)`")?;
                let then_body = self.stmt_or_block()?;
                let else_body = if self.eat(Tok::KwElse) {
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                let cond = self.expression()?;
                self.expect(Tok::RParen, "`)`")?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While { cond, body, span })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                let init = if *self.peek() == Tok::Semi {
                    self.bump();
                    None
                } else {
                    Some(Box::new(self.simple_statement()?))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(Tok::Semi, "`;`")?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(Tok::RParen, "`)`")?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Return { value, span })
            }
            _ => self.simple_statement(),
        }
    }

    /// A declaration or an expression statement terminated by `;`.
    fn simple_statement(&mut self) -> Result<Stmt, Diag> {
        let span = self.span();
        if self.at_type() {
            let ty = self.parse_type()?;
            let name = match self.bump().tok {
                Tok::Ident(s) => s,
                other => {
                    return Err(Diag::new(
                        format!("expected variable name, found `{other}`"),
                        span.line,
                        span.column,
                    ))
                }
            };
            let array = if self.eat(Tok::LBracket) {
                let size = match self.bump().tok {
                    Tok::IntLit(v) if v >= 0 => v as u64,
                    other => {
                        return Err(Diag::new(
                            format!("expected array size, found `{other}`"),
                            span.line,
                            span.column,
                        ))
                    }
                };
                self.expect(Tok::RBracket, "`]`")?;
                Some(size)
            } else {
                None
            };
            let init = if self.eat(Tok::Assign) {
                Some(self.expression()?)
            } else {
                None
            };
            self.expect(Tok::Semi, "`;`")?;
            Ok(Stmt::Decl {
                name,
                ty,
                array,
                init,
                span,
            })
        } else {
            let e = self.expression()?;
            self.expect(Tok::Semi, "`;`")?;
            Ok(Stmt::Expr(e))
        }
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, Diag> {
        if self.eat(Tok::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // ---- Expressions -----------------------------------------------------------------

    fn expression(&mut self) -> Result<Expr, Diag> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, Diag> {
        let lhs = self.conditional()?;
        let span = self.span();
        match self.peek() {
            Tok::Assign => {
                self.bump();
                let value = self.assignment()?;
                Ok(Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(value),
                    span,
                })
            }
            Tok::PlusAssign | Tok::MinusAssign => {
                let op = if *self.peek() == Tok::PlusAssign {
                    BinOpKind::Add
                } else {
                    BinOpKind::Sub
                };
                self.bump();
                let value = self.assignment()?;
                let combined = Expr::Binary {
                    op,
                    lhs: Box::new(lhs.clone()),
                    rhs: Box::new(value),
                    span: span.clone(),
                };
                Ok(Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(combined),
                    span,
                })
            }
            _ => Ok(lhs),
        }
    }

    fn conditional(&mut self) -> Result<Expr, Diag> {
        let cond = self.logical_or()?;
        if self.eat(Tok::Question) {
            let span = self.span();
            let then = self.expression()?;
            self.expect(Tok::Colon, "`:`")?;
            let els = self.conditional()?;
            Ok(Expr::Conditional {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.logical_and()?;
        while *self.peek() == Tok::OrOr {
            let span = self.span();
            self.bump();
            let rhs = self.logical_and()?;
            lhs = Expr::Binary {
                op: BinOpKind::LogicalOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.bit_or()?;
        while *self.peek() == Tok::AndAnd {
            let span = self.span();
            self.bump();
            let rhs = self.bit_or()?;
            lhs = Expr::Binary {
                op: BinOpKind::LogicalAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.bit_xor()?;
        while *self.peek() == Tok::Pipe {
            let span = self.span();
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary {
                op: BinOpKind::BitOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.bit_and()?;
        while *self.peek() == Tok::Caret {
            let span = self.span();
            self.bump();
            let rhs = self.bit_and()?;
            lhs = Expr::Binary {
                op: BinOpKind::BitXor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.equality()?;
        while *self.peek() == Tok::Amp {
            let span = self.span();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Binary {
                op: BinOpKind::BitAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOpKind::Eq,
                Tok::Ne => BinOpKind::Ne,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOpKind::Lt,
                Tok::Le => BinOpKind::Le,
                Tok::Gt => BinOpKind::Gt,
                Tok::Ge => BinOpKind::Ge,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOpKind::Shl,
                Tok::Shr => BinOpKind::Shr,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOpKind::Add,
                Tok::Minus => BinOpKind::Sub,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, Diag> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOpKind::Mul,
                Tok::Slash => BinOpKind::Div,
                Tok::Percent => BinOpKind::Rem,
                _ => break,
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diag> {
        let span = self.span();
        let op = match self.peek() {
            Tok::Minus => Some(UnOpKind::Neg),
            Tok::Bang => Some(UnOpKind::Not),
            Tok::Tilde => Some(UnOpKind::BitNot),
            Tok::Star => Some(UnOpKind::Deref),
            Tok::Amp => Some(UnOpKind::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                span,
            });
        }
        // Cast: `(` type `)` unary — only when a type follows the parenthesis.
        if *self.peek() == Tok::LParen {
            let save = self.pos;
            self.bump();
            if self.at_type() {
                if let Ok(ty) = self.parse_type() {
                    if self.eat(Tok::RParen) {
                        let operand = self.unary()?;
                        return Ok(Expr::Cast {
                            ty,
                            operand: Box::new(operand),
                            span,
                        });
                    }
                }
            }
            self.pos = save;
        }
        if *self.peek() == Tok::KwSizeof {
            self.bump();
            self.expect(Tok::LParen, "`(`")?;
            let ty = self.parse_type()?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(Expr::SizeOf { ty, span });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Diag> {
        let mut e = self.primary()?;
        loop {
            let span = self.span();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    self.expect(Tok::RBracket, "`]`")?;
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                        span,
                    };
                }
                Tok::Arrow => {
                    self.bump();
                    let field = match self.bump().tok {
                        Tok::Ident(s) => s,
                        other => {
                            return Err(Diag::new(
                                format!("expected field name, found `{other}`"),
                                span.line,
                                span.column,
                            ))
                        }
                    };
                    e = Expr::Member {
                        base: Box::new(e),
                        field,
                        span,
                    };
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr::PostIncrement {
                        target: Box::new(e),
                        span,
                    };
                }
                Tok::MinusMinus => {
                    // Desugar x-- into an assignment x = x - 1 at parse time.
                    self.bump();
                    let one = Expr::IntLit {
                        value: 1,
                        span: span.clone(),
                    };
                    let sub = Expr::Binary {
                        op: BinOpKind::Sub,
                        lhs: Box::new(e.clone()),
                        rhs: Box::new(one),
                        span: span.clone(),
                    };
                    e = Expr::Assign {
                        target: Box::new(e),
                        value: Box::new(sub),
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, Diag> {
        let span = self.span();
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit { value: v, span })
            }
            Tok::CharLit(c) => {
                self.bump();
                Ok(Expr::IntLit {
                    value: i64::from(c),
                    span,
                })
            }
            Tok::KwNull => {
                self.bump();
                Ok(Expr::Null { span })
            }
            Tok::StrLit(_) => {
                // String literals are modeled as opaque non-null pointers via a
                // call to a synthetic allocator.
                self.bump();
                Ok(Expr::Call {
                    callee: "__string_literal".to_string(),
                    args: vec![],
                    span,
                })
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(Tok::LParen) {
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expression()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        span,
                    })
                } else {
                    Ok(Expr::Var { name, span })
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            _ => self.error("expected an expression"),
        }
    }
}

/// Common typedef names that appear in the paper's examples.
fn is_typedef_name(name: &str) -> bool {
    matches!(
        name,
        "int8_t"
            | "int16_t"
            | "int32_t"
            | "int64_t"
            | "uint8_t"
            | "uint16_t"
            | "uint32_t"
            | "uint64_t"
            | "size_t"
            | "ssize_t"
            | "ptrdiff_t"
            | "intptr_t"
            | "uintptr_t"
    )
}

/// The type a typedef name denotes.
fn typedef_type(name: &str) -> CType {
    match name {
        "int8_t" => CType::Int {
            width: 8,
            signed: true,
        },
        "int16_t" => CType::Int {
            width: 16,
            signed: true,
        },
        "int32_t" => CType::Int {
            width: 32,
            signed: true,
        },
        "int64_t" | "ssize_t" | "ptrdiff_t" | "intptr_t" => CType::Int {
            width: 64,
            signed: true,
        },
        "uint8_t" => CType::Int {
            width: 8,
            signed: false,
        },
        "uint16_t" => CType::Int {
            width: 16,
            signed: false,
        },
        "uint32_t" => CType::Int {
            width: 32,
            signed: false,
        },
        "uint64_t" | "size_t" | "uintptr_t" => CType::Int {
            width: 64,
            signed: false,
        },
        _ => CType::int(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> TranslationUnit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parse_figure1_style_function() {
        let unit = parse_src(
            "int check(char *buf, char *buf_end, unsigned int len) {\n\
              if (buf + len >= buf_end) return -1;\n\
              if (buf + len < buf) return -1;\n\
              return 0;\n\
            }",
        );
        assert_eq!(unit.functions.len(), 1);
        let f = &unit.functions[0];
        assert_eq!(f.name, "check");
        assert_eq!(f.params.len(), 3);
        assert!(f.params[0].ty.is_pointer());
        assert_eq!(f.body.len(), 3);
        assert!(matches!(f.body[0], Stmt::If { .. }));
        assert!(matches!(f.body[2], Stmt::Return { .. }));
    }

    #[test]
    fn parse_figure2_style_function() {
        let unit = parse_src(
            "int poll(struct tun_struct *tun) {\n\
              struct sock *sk = tun->sk;\n\
              if (!tun) return 1;\n\
              return 0;\n\
            }",
        );
        let f = &unit.functions[0];
        assert_eq!(f.params[0].ty, CType::ptr_to(CType::Void));
        match &f.body[0] {
            Stmt::Decl { name, ty, init, .. } => {
                assert_eq!(name, "sk");
                assert!(ty.is_pointer());
                assert!(matches!(init, Some(Expr::Member { .. })));
            }
            other => panic!("expected declaration, got {other:?}"),
        }
    }

    #[test]
    fn parse_expressions_with_precedence() {
        let unit = parse_src("int f(int x, int y) { return x + y * 2 < x << 1; }");
        let f = &unit.functions[0];
        match &f.body[0] {
            Stmt::Return { value: Some(e), .. } => match e {
                // `<` binds loosest: (x + y*2) < (x << 1)
                Expr::Binary { op, lhs, rhs, .. } => {
                    assert_eq!(*op, BinOpKind::Lt);
                    assert!(matches!(
                        **lhs,
                        Expr::Binary {
                            op: BinOpKind::Add,
                            ..
                        }
                    ));
                    assert!(matches!(
                        **rhs,
                        Expr::Binary {
                            op: BinOpKind::Shl,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected expr {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parse_array_declaration_and_index() {
        let unit = parse_src("int f(void) { char buf[15]; return buf[3]; }");
        let f = &unit.functions[0];
        match &f.body[0] {
            Stmt::Decl { array, .. } => assert_eq!(*array, Some(15)),
            other => panic!("expected array decl, got {other:?}"),
        }
        match &f.body[1] {
            Stmt::Return { value: Some(e), .. } => {
                assert!(matches!(e, Expr::Index { .. }));
            }
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parse_loops_casts_and_ternary() {
        let unit = parse_src(
            "long f(int n) {\n\
               long total = 0;\n\
               for (int i = 0; i < n; i = i + 1) { total += (long)i; }\n\
               while (total > 100) total -= 1;\n\
               return total > 0 ? total : -total;\n\
             }",
        );
        let f = &unit.functions[0];
        assert!(matches!(f.body[1], Stmt::For { .. }));
        assert!(matches!(f.body[2], Stmt::While { .. }));
        match &f.body[3] {
            Stmt::Return { value: Some(e), .. } => {
                assert!(matches!(e, Expr::Conditional { .. }));
            }
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parse_calls_and_logical_ops() {
        let unit =
            parse_src("int f(char *p, int x) { if (p != NULL && abs(x) < 0) return 1; return 0; }");
        let f = &unit.functions[0];
        match &f.body[0] {
            Stmt::If { cond, .. } => match cond {
                Expr::Binary { op, rhs, .. } => {
                    assert_eq!(*op, BinOpKind::LogicalAnd);
                    assert!(matches!(
                        **rhs,
                        Expr::Binary {
                            op: BinOpKind::Lt,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected cond {other:?}"),
            },
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parse_typedef_names_and_prototypes() {
        let unit = parse_src(
            "int64_t divide(int64_t a, int64_t b);\n\
             int64_t divide(int64_t a, int64_t b) { return a / b; }",
        );
        assert_eq!(unit.functions.len(), 1);
        assert_eq!(
            unit.functions[0].ret_ty,
            CType::Int {
                width: 64,
                signed: true
            }
        );
    }

    #[test]
    fn parse_post_increment_and_unary() {
        let unit = parse_src("int f(int x) { x++; return -x + ~x + !x; }");
        let f = &unit.functions[0];
        assert!(matches!(f.body[0], Stmt::Expr(Expr::PostIncrement { .. })));
    }

    #[test]
    fn struct_definitions_are_skipped() {
        let unit = parse_src("struct sock { int fd; };\nint f(void) { return 0; }");
        assert_eq!(unit.functions.len(), 1);
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse(&lex("int f( { }").unwrap()).unwrap_err();
        assert!(err.line >= 1);
        assert!(!err.message.is_empty());
    }
}
