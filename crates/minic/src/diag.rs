//! Diagnostics for the frontend.

use std::fmt;

/// A frontend error with a source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    pub message: String,
    pub line: u32,
    pub column: u32,
}

impl Diag {
    /// Create a diagnostic.
    pub fn new(message: String, line: u32, column: u32) -> Diag {
        Diag {
            message,
            line,
            column,
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for Diag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let d = Diag::new("unexpected token".to_string(), 3, 9);
        assert_eq!(d.to_string(), "3:9: unexpected token");
    }
}
