//! Lowering from the mini-C AST to the IR.
//!
//! Every local variable and parameter is given a stack slot (`alloca`) with
//! explicit loads and stores; the optimizer's `mem2reg` pass later promotes
//! them to SSA values, mirroring the clang → LLVM pipeline the paper uses.
//! Short-circuit operators and the conditional operator lower to control
//! flow, so the checker's reachability conditions see exactly the branch
//! structure the programmer wrote. Array indexing carries the declared array
//! bound on the emitted `ptradd`, which feeds the buffer-overflow UB
//! condition of Figure 3.

use crate::ast::*;
use crate::diag::Diag;
use stack_ir::{
    BinOp, CmpPred, FunctionBuilder, InstKind, Module, Operand, Origin, Param, SourceLoc, Type,
};
use std::collections::HashMap;

/// Lower a translation unit into an IR module.
pub fn lower(unit: &TranslationUnit, file_name: &str) -> Result<Module, Diag> {
    let mut module = Module::new(file_name);
    // Collect return types of functions defined in this unit so calls between
    // them type-check.
    let signatures: HashMap<String, CType> = unit
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.ret_ty.clone()))
        .collect();
    for func in &unit.functions {
        let lowered = FuncLowerer::new(func, file_name, &signatures).lower()?;
        module.add_function(lowered);
    }
    Ok(module)
}

/// Convenience: lex, parse, and lower a source string.
pub fn compile(src: &str, file_name: &str) -> Result<Module, Diag> {
    let tokens = crate::lexer::lex(src)?;
    let unit = crate::parser::parse(&tokens)?;
    lower(&unit, file_name)
}

/// A local variable's stack slot.
#[derive(Clone, Debug)]
struct Slot {
    /// Pointer to the slot (an `alloca` result or, for parameters, the copy).
    ptr: Operand,
    /// Declared C type of the variable (element type for arrays).
    ty: CType,
    /// Array element count, if declared as an array.
    array: Option<u64>,
}

struct FuncLowerer<'a> {
    def: &'a FuncDef,
    file: &'a str,
    signatures: &'a HashMap<String, CType>,
    builder: FunctionBuilder,
    scopes: Vec<HashMap<String, Slot>>,
}

impl<'a> FuncLowerer<'a> {
    fn new(def: &'a FuncDef, file: &'a str, signatures: &'a HashMap<String, CType>) -> Self {
        let params: Vec<Param> = def
            .params
            .iter()
            .map(|p| Param {
                name: p.name.clone(),
                ty: ctype_to_ir(&p.ty),
            })
            .collect();
        let builder = FunctionBuilder::new(&def.name, params, ctype_to_ir(&def.ret_ty));
        FuncLowerer {
            def,
            file,
            signatures,
            builder,
            scopes: vec![HashMap::new()],
        }
    }

    fn lower(mut self) -> Result<stack_ir::Function, Diag> {
        // Give every parameter a stack slot so assignments to parameters work;
        // mem2reg removes the indirection later.
        self.set_origin(&self.def.span.clone());
        for (i, p) in self.def.params.iter().enumerate() {
            let slot_ptr = self.builder.alloca(ctype_to_ir(&p.ty), 1);
            self.builder.store(slot_ptr, Operand::Param(i as u32));
            self.current_scope()?.insert(
                p.name.clone(),
                Slot {
                    ptr: slot_ptr,
                    ty: p.ty.clone(),
                    array: None,
                },
            );
        }
        let body = self.def.body.clone();
        self.lower_stmts(&body)?;
        // Fall-through return.
        self.ensure_terminated();
        Ok(self.builder.finish())
    }

    fn ensure_terminated(&mut self) {
        let cur = self.builder.current_block();
        let has_term = !matches!(
            self.builder.func().block(cur).terminator,
            stack_ir::Terminator::Unreachable
        );
        if !has_term {
            match &self.def.ret_ty {
                CType::Void => self.builder.ret_void(),
                ty => {
                    let zero = Operand::int(ctype_to_ir(ty), 0);
                    self.builder.ret(zero);
                }
            }
        }
    }

    fn set_origin(&mut self, span: &Span) {
        let loc = SourceLoc::new(self.file, span.line, span.column);
        let origin = match &span.from_macro {
            Some(name) => Origin::macro_expansion(loc, name),
            None => Origin::programmer(loc),
        };
        self.builder.set_origin(origin);
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Some(s.clone());
            }
        }
        None
    }

    fn err<T>(&self, msg: &str, span: &Span) -> Result<T, Diag> {
        Err(Diag::new(
            format!("{}: {msg}", self.def.name),
            span.line,
            span.column,
        ))
    }

    /// The innermost scope. A scope is pushed before any statement lowers
    /// and the stack never drains below the function scope, so an empty
    /// stack is a broken internal invariant — reported as a [`Diag`] like
    /// every other lowering error instead of panicking the caller.
    fn current_scope(&mut self) -> Result<&mut HashMap<String, Slot>, Diag> {
        let function = self.def.name.clone();
        self.scopes
            .last_mut()
            .ok_or_else(|| Diag::new(format!("{function}: internal error: no active scope"), 0, 0))
    }

    // ---- Statements -------------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), Diag> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn block_is_terminated(&self) -> bool {
        !matches!(
            self.builder
                .func()
                .block(self.builder.current_block())
                .terminator,
            stack_ir::Terminator::Unreachable
        )
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), Diag> {
        // Statements after a return in the same block are unreachable; skip
        // them rather than emitting into a terminated block.
        if self.block_is_terminated() {
            return Ok(());
        }
        match stmt {
            Stmt::Decl {
                name,
                ty,
                array,
                init,
                span,
            } => {
                self.set_origin(span);
                let count = array.unwrap_or(1);
                let elem_ir = ctype_to_ir(ty);
                let slot_ptr = self.builder.alloca(elem_ir, count);
                self.current_scope()?.insert(
                    name.clone(),
                    Slot {
                        ptr: slot_ptr,
                        ty: ty.clone(),
                        array: *array,
                    },
                );
                if let Some(init) = init {
                    let (value, vty) = self.lower_expr(init)?;
                    let converted = self.convert(value, &vty, ty, span)?;
                    self.set_origin(span);
                    self.builder.store(slot_ptr, converted);
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                let (cv, cty) = self.lower_expr(cond)?;
                let flag = self.make_cond(cv, &cty, span)?;
                self.set_origin(span);
                let then_bb = self.builder.add_block("if.then");
                let else_bb = self.builder.add_block("if.else");
                let merge_bb = self.builder.add_block("if.end");
                self.builder.cond_br(flag, then_bb, else_bb);

                self.builder.switch_to(then_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(then_body)?;
                self.scopes.pop();
                if !self.block_is_terminated() {
                    self.builder.br(merge_bb);
                }

                self.builder.switch_to(else_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(else_body)?;
                self.scopes.pop();
                if !self.block_is_terminated() {
                    self.builder.br(merge_bb);
                }

                self.builder.switch_to(merge_bb);
                Ok(())
            }
            Stmt::While { cond, body, span } => {
                let header = self.builder.add_block("while.cond");
                let body_bb = self.builder.add_block("while.body");
                let exit = self.builder.add_block("while.end");
                self.set_origin(span);
                self.builder.br(header);
                self.builder.switch_to(header);
                let (cv, cty) = self.lower_expr(cond)?;
                let flag = self.make_cond(cv, &cty, span)?;
                self.set_origin(span);
                self.builder.cond_br(flag, body_bb, exit);
                self.builder.switch_to(body_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                if !self.block_is_terminated() {
                    self.builder.br(header);
                }
                self.builder.switch_to(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let header = self.builder.add_block("for.cond");
                let body_bb = self.builder.add_block("for.body");
                let exit = self.builder.add_block("for.end");
                self.set_origin(span);
                self.builder.br(header);
                self.builder.switch_to(header);
                let flag = match cond {
                    Some(c) => {
                        let (cv, cty) = self.lower_expr(c)?;
                        self.make_cond(cv, &cty, span)?
                    }
                    None => Operand::bool(true),
                };
                self.set_origin(span);
                self.builder.cond_br(flag, body_bb, exit);
                self.builder.switch_to(body_bb);
                self.lower_stmts(body)?;
                if let Some(step) = step {
                    if !self.block_is_terminated() {
                        self.lower_expr(step)?;
                    }
                }
                if !self.block_is_terminated() {
                    self.builder.br(header);
                }
                self.builder.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return { value, span } => {
                self.set_origin(span);
                match value {
                    None => self.builder.ret_void(),
                    Some(e) => {
                        let (v, vty) = self.lower_expr(e)?;
                        let ret_ty = self.def.ret_ty.clone();
                        let converted = self.convert(v, &vty, &ret_ty, span)?;
                        self.set_origin(span);
                        self.builder.ret(converted);
                    }
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                self.lower_stmts(stmts)?;
                self.scopes.pop();
                Ok(())
            }
        }
    }

    // ---- Expressions --------------------------------------------------------------

    /// Lower an expression; returns the IR operand and its C type.
    fn lower_expr(&mut self, expr: &Expr) -> Result<(Operand, CType), Diag> {
        match expr {
            Expr::IntLit { value, span } => {
                self.set_origin(span);
                // Literals that do not fit 32 bits become 64-bit.
                let ty = if *value > i64::from(i32::MAX) || *value < i64::from(i32::MIN) {
                    CType::long()
                } else {
                    CType::int()
                };
                Ok((Operand::int(ctype_to_ir(&ty), *value), ty))
            }
            Expr::Null { span } => {
                self.set_origin(span);
                Ok((Operand::null(), CType::ptr_to(CType::Void)))
            }
            Expr::Var { name, span } => {
                self.set_origin(span);
                let slot = match self.lookup(name) {
                    Some(s) => s,
                    None => return self.err(&format!("unknown variable `{name}`"), span),
                };
                if slot.array.is_some() {
                    // Arrays decay to a pointer to their first element.
                    Ok((slot.ptr, CType::ptr_to(slot.ty.clone())))
                } else {
                    let value = self
                        .builder
                        .load_named(slot.ptr, ctype_to_ir(&slot.ty), name);
                    Ok((value, slot.ty))
                }
            }
            Expr::Unary { op, operand, span } => self.lower_unary(*op, operand, span),
            Expr::Binary { op, lhs, rhs, span } => self.lower_binary(*op, lhs, rhs, span),
            Expr::Conditional {
                cond,
                then,
                els,
                span,
            } => {
                let (cv, cty) = self.lower_expr(cond)?;
                let flag = self.make_cond(cv, &cty, span)?;
                self.set_origin(span);
                let then_bb = self.builder.add_block("cond.then");
                let else_bb = self.builder.add_block("cond.else");
                let merge = self.builder.add_block("cond.end");
                self.builder.cond_br(flag, then_bb, else_bb);
                self.builder.switch_to(then_bb);
                let (tv, tty) = self.lower_expr(then)?;
                let then_end = self.builder.current_block();
                self.builder.br(merge);
                self.builder.switch_to(else_bb);
                let (ev, ety) = self.lower_expr(els)?;
                // Unify the two branch types.
                let common = common_type(&tty, &ety);
                let ev = self.convert(ev, &ety, &common, span)?;
                let else_end = self.builder.current_block();
                self.builder.br(merge);
                // Conversion of the then-value must happen in the then block;
                // go back and do it there if needed.
                self.builder.switch_to(then_end);
                let tv = self.convert(tv, &tty, &common, span)?;
                self.builder.br(merge);
                self.builder.switch_to(merge);
                let phi = self
                    .builder
                    .phi(ctype_to_ir(&common), vec![(then_end, tv), (else_end, ev)]);
                Ok((phi, common))
            }
            Expr::Index { base, index, span } => {
                let (ptr, elem_ty, bound) = self.lower_index_address(base, index, span)?;
                self.set_origin(span);
                let _ = bound;
                let value = self.builder.load(ptr, ctype_to_ir(&elem_ty));
                Ok((value, elem_ty))
            }
            Expr::Member { base, field, span } => {
                let (bv, bty) = self.lower_expr(base)?;
                if !bty.is_pointer() {
                    return self.err("member access through non-pointer", span);
                }
                self.set_origin(span);
                // Field-insensitive: load a pointer-sized value through the
                // base pointer. The null-dereference UB condition attaches to
                // this load, which is what the analysis needs.
                let value = self.builder.load_named(bv, Type::I64, field);
                Ok((
                    value,
                    CType::Int {
                        width: 64,
                        signed: true,
                    },
                ))
            }
            Expr::Call { callee, args, span } => {
                let mut arg_ops = Vec::new();
                for a in args {
                    let (v, _) = self.lower_expr(a)?;
                    arg_ops.push(v);
                }
                self.set_origin(span);
                let ret_ty = self.callee_return_type(callee);
                let result = self.builder.call(callee, &arg_ops, ctype_to_ir(&ret_ty));
                Ok((result, ret_ty))
            }
            Expr::Cast { ty, operand, span } => {
                let (v, vty) = self.lower_expr(operand)?;
                let converted = self.convert(v, &vty, ty, span)?;
                Ok((converted, ty.clone()))
            }
            Expr::Assign {
                target,
                value,
                span,
            } => {
                let (v, vty) = self.lower_expr(value)?;
                self.lower_store_to(target, v, &vty, span)
            }
            Expr::PostIncrement { target, span } => {
                let (old, ty) = self.lower_expr(target)?;
                let one = Operand::int(ctype_to_ir(&ty), 1);
                self.set_origin(span);
                let new = if ty.is_signed_int() {
                    self.builder.add_nsw(old, one)
                } else {
                    self.builder.add(old, one)
                };
                self.lower_store_to(target, new, &ty, span)?;
                Ok((old, ty))
            }
            Expr::SizeOf { ty, span } => {
                self.set_origin(span);
                Ok((
                    Operand::int(Type::I64, ty.byte_size() as i64),
                    CType::ulong(),
                ))
            }
        }
    }

    /// Compute the address and element type of `base[index]`.
    fn lower_index_address(
        &mut self,
        base: &Expr,
        index: &Expr,
        span: &Span,
    ) -> Result<(Operand, CType, Option<u64>), Diag> {
        // Direct indexing of a declared array keeps its bound for the
        // buffer-overflow UB condition.
        let (base_op, base_ty, bound) = match base {
            Expr::Var { name, span: vspan } => {
                let slot = match self.lookup(name) {
                    Some(s) => s,
                    None => return self.err(&format!("unknown variable `{name}`"), vspan),
                };
                if slot.array.is_some() {
                    self.set_origin(vspan);
                    (slot.ptr, CType::ptr_to(slot.ty.clone()), slot.array)
                } else {
                    let (v, t) = self.lower_expr(base)?;
                    (v, t, None)
                }
            }
            _ => {
                let (v, t) = self.lower_expr(base)?;
                (v, t, None)
            }
        };
        if !base_ty.is_pointer() {
            return self.err("indexing a non-pointer", span);
        }
        let elem_ty = base_ty.pointee();
        let elem_ty = if elem_ty == CType::Void {
            CType::char_ty()
        } else {
            elem_ty
        };
        let (iv, ity) = self.lower_expr(index)?;
        let idx64 = self.convert(iv, &ity, &CType::long(), span)?;
        self.set_origin(span);
        let ptr = match bound {
            Some(b) => self
                .builder
                .ptr_add_bounded(base_op, idx64, elem_ty.byte_size(), b),
            None => self.builder.ptr_add(base_op, idx64, elem_ty.byte_size()),
        };
        Ok((ptr, elem_ty, bound))
    }

    /// Store `value` into the lvalue `target`.
    fn lower_store_to(
        &mut self,
        target: &Expr,
        value: Operand,
        vty: &CType,
        span: &Span,
    ) -> Result<(Operand, CType), Diag> {
        match target {
            Expr::Var { name, span: vspan } => {
                let slot = match self.lookup(name) {
                    Some(s) => s,
                    None => return self.err(&format!("unknown variable `{name}`"), vspan),
                };
                let converted = self.convert(value, vty, &slot.ty, span)?;
                self.set_origin(span);
                self.builder.store(slot.ptr, converted);
                Ok((converted, slot.ty))
            }
            Expr::Unary {
                op: UnOpKind::Deref,
                operand,
                span: dspan,
            } => {
                let (ptr, pty) = self.lower_expr(operand)?;
                if !pty.is_pointer() {
                    return self.err("store through non-pointer", dspan);
                }
                let elem = pty.pointee();
                let elem = if elem == CType::Void {
                    CType::long()
                } else {
                    elem
                };
                let converted = self.convert(value, vty, &elem, span)?;
                self.set_origin(span);
                self.builder.store(ptr, converted);
                Ok((converted, elem))
            }
            Expr::Index {
                base,
                index,
                span: ispan,
            } => {
                let (ptr, elem_ty, _) = self.lower_index_address(base, index, ispan)?;
                let converted = self.convert(value, vty, &elem_ty, span)?;
                self.set_origin(span);
                self.builder.store(ptr, converted);
                Ok((converted, elem_ty))
            }
            Expr::Member {
                base, span: mspan, ..
            } => {
                let (bv, bty) = self.lower_expr(base)?;
                if !bty.is_pointer() {
                    return self.err("member store through non-pointer", mspan);
                }
                let converted = self.convert(value, vty, &CType::long(), span)?;
                self.set_origin(span);
                self.builder.store(bv, converted);
                Ok((converted, CType::long()))
            }
            other => self.err(&format!("unsupported assignment target {other:?}"), span),
        }
    }

    fn lower_unary(
        &mut self,
        op: UnOpKind,
        operand: &Expr,
        span: &Span,
    ) -> Result<(Operand, CType), Diag> {
        match op {
            UnOpKind::Neg => {
                let (v, ty) = self.lower_expr(operand)?;
                self.set_origin(span);
                let neg = if ty.is_signed_int() {
                    self.builder.neg_nsw(v)
                } else {
                    self.builder.neg(v)
                };
                Ok((neg, ty))
            }
            UnOpKind::BitNot => {
                let (v, ty) = self.lower_expr(operand)?;
                self.set_origin(span);
                let all_ones = Operand::int(ctype_to_ir(&ty), -1);
                let r = self.builder.bin(BinOp::Xor, v, all_ones);
                Ok((r, ty))
            }
            UnOpKind::Not => {
                let (v, ty) = self.lower_expr(operand)?;
                self.set_origin(span);
                let flag = if ty.is_pointer() {
                    self.builder.is_null(v)
                } else if ty == CType::Bool {
                    self.builder.cmp(CmpPred::Eq, v, Operand::bool(false))
                } else {
                    let zero = Operand::int(ctype_to_ir(&ty), 0);
                    self.builder.cmp(CmpPred::Eq, v, zero)
                };
                Ok((flag, CType::Bool))
            }
            UnOpKind::Deref => {
                let (v, ty) = self.lower_expr(operand)?;
                if !ty.is_pointer() {
                    return self.err("dereference of non-pointer", span);
                }
                let elem = ty.pointee();
                let elem = if elem == CType::Void {
                    CType::long()
                } else {
                    elem
                };
                self.set_origin(span);
                let value = self.builder.load(v, ctype_to_ir(&elem));
                Ok((value, elem))
            }
            UnOpKind::AddrOf => match operand {
                Expr::Var { name, span: vspan } => {
                    let slot = match self.lookup(name) {
                        Some(s) => s,
                        None => return self.err(&format!("unknown variable `{name}`"), vspan),
                    };
                    self.set_origin(span);
                    Ok((slot.ptr, CType::ptr_to(slot.ty)))
                }
                Expr::Unary {
                    op: UnOpKind::Deref,
                    operand,
                    ..
                } => self.lower_expr(operand),
                Expr::Index {
                    base,
                    index,
                    span: ispan,
                } => {
                    let (ptr, elem, _) = self.lower_index_address(base, index, ispan)?;
                    Ok((ptr, CType::ptr_to(elem)))
                }
                other => self.err(&format!("cannot take the address of {other:?}"), span),
            },
        }
    }

    fn lower_binary(
        &mut self,
        op: BinOpKind,
        lhs: &Expr,
        rhs: &Expr,
        span: &Span,
    ) -> Result<(Operand, CType), Diag> {
        // Short-circuit operators lower to control flow.
        if matches!(op, BinOpKind::LogicalAnd | BinOpKind::LogicalOr) {
            return self.lower_short_circuit(op, lhs, rhs, span);
        }
        let (lv, lty) = self.lower_expr(lhs)?;
        let (rv, rty) = self.lower_expr(rhs)?;

        // Pointer arithmetic and pointer comparisons.
        if lty.is_pointer() || rty.is_pointer() {
            return self.lower_pointer_op(op, lv, lty, rv, rty, span);
        }

        let common = common_type(&lty, &rty);
        let lv = self.convert(lv, &lty, &common, span)?;
        let rv = self.convert(rv, &rty, &common, span)?;
        let signed = common.is_signed_int();
        self.set_origin(span);
        // Signed +, -, * carry the `nsw` marker: their overflow is undefined
        // behavior (Figure 3), unlike unsigned wrap-around.
        let arith = |b: &mut FunctionBuilder, op: BinOp, l: Operand, r: Operand| {
            if signed {
                b.bin_nsw(op, l, r)
            } else {
                b.bin(op, l, r)
            }
        };
        let result = match op {
            BinOpKind::Add => (arith(&mut self.builder, BinOp::Add, lv, rv), common),
            BinOpKind::Sub => (arith(&mut self.builder, BinOp::Sub, lv, rv), common),
            BinOpKind::Mul => (arith(&mut self.builder, BinOp::Mul, lv, rv), common),
            BinOpKind::Div => (
                self.builder
                    .bin(if signed { BinOp::SDiv } else { BinOp::UDiv }, lv, rv),
                common,
            ),
            BinOpKind::Rem => (
                self.builder
                    .bin(if signed { BinOp::SRem } else { BinOp::URem }, lv, rv),
                common,
            ),
            BinOpKind::Shl => (self.builder.bin(BinOp::Shl, lv, rv), common),
            BinOpKind::Shr => (
                self.builder
                    .bin(if signed { BinOp::AShr } else { BinOp::LShr }, lv, rv),
                common,
            ),
            BinOpKind::BitAnd => (self.builder.bin(BinOp::And, lv, rv), common),
            BinOpKind::BitOr => (self.builder.bin(BinOp::Or, lv, rv), common),
            BinOpKind::BitXor => (self.builder.bin(BinOp::Xor, lv, rv), common),
            BinOpKind::Lt
            | BinOpKind::Le
            | BinOpKind::Gt
            | BinOpKind::Ge
            | BinOpKind::Eq
            | BinOpKind::Ne => {
                let Some(pred) = comparison_pred(op, signed) else {
                    return self.err("internal error: non-comparison operator", span);
                };
                (self.builder.cmp(pred, lv, rv), CType::Bool)
            }
            BinOpKind::LogicalAnd | BinOpKind::LogicalOr => {
                return self.err(
                    "internal error: short-circuit operator reached arithmetic lowering",
                    span,
                )
            }
        };
        Ok(result)
    }

    fn lower_pointer_op(
        &mut self,
        op: BinOpKind,
        lv: Operand,
        lty: CType,
        rv: Operand,
        rty: CType,
        span: &Span,
    ) -> Result<(Operand, CType), Diag> {
        self.set_origin(span);
        match op {
            BinOpKind::Add | BinOpKind::Sub if lty.is_pointer() && !rty.is_pointer() => {
                // p + i / p - i: scale by the element size.
                let elem = lty.pointee();
                let size = if elem == CType::Void {
                    1
                } else {
                    elem.byte_size()
                };
                let idx = self.convert(rv, &rty, &CType::long(), span)?;
                self.set_origin(span);
                let idx = if op == BinOpKind::Sub {
                    self.builder.neg(idx)
                } else {
                    idx
                };
                let p = self.builder.ptr_add(lv, idx, size);
                Ok((p, lty))
            }
            BinOpKind::Add if rty.is_pointer() && !lty.is_pointer() => {
                self.lower_pointer_op(BinOpKind::Add, rv, rty, lv, lty, span)
            }
            BinOpKind::Sub if lty.is_pointer() && rty.is_pointer() => {
                // Pointer difference in bytes (the corpus uses it only for
                // comparisons against lengths).
                let li = Operand::Inst(
                    self.builder
                        .emit(InstKind::PtrToInt { value: lv }, Type::I64),
                );
                let ri = Operand::Inst(
                    self.builder
                        .emit(InstKind::PtrToInt { value: rv }, Type::I64),
                );
                let d = self.builder.sub(li, ri);
                Ok((d, CType::long()))
            }
            BinOpKind::Eq
            | BinOpKind::Ne
            | BinOpKind::Lt
            | BinOpKind::Le
            | BinOpKind::Gt
            | BinOpKind::Ge => {
                // Pointer comparison; integer literals (0 / NULL) become the
                // null pointer constant.
                let lv = self.coerce_to_pointer(lv, &lty);
                let rv = self.coerce_to_pointer(rv, &rty);
                let Some(pred) = comparison_pred(op, false) else {
                    return self.err("internal error: non-comparison operator", span);
                };
                Ok((self.builder.cmp(pred, lv, rv), CType::Bool))
            }
            other => self.err(&format!("unsupported pointer operation {other:?}"), span),
        }
    }

    fn coerce_to_pointer(&mut self, v: Operand, ty: &CType) -> Operand {
        if ty.is_pointer() {
            v
        } else if v.is_const_value(0) {
            Operand::null()
        } else {
            Operand::Inst(
                self.builder
                    .emit(InstKind::IntToPtr { value: v }, Type::Ptr),
            )
        }
    }

    fn lower_short_circuit(
        &mut self,
        op: BinOpKind,
        lhs: &Expr,
        rhs: &Expr,
        span: &Span,
    ) -> Result<(Operand, CType), Diag> {
        let (lv, lty) = self.lower_expr(lhs)?;
        let lflag = self.make_cond(lv, &lty, span)?;
        self.set_origin(span);
        let lhs_end = self.builder.current_block();
        let rhs_bb = self.builder.add_block("sc.rhs");
        let merge = self.builder.add_block("sc.end");
        match op {
            BinOpKind::LogicalAnd => self.builder.cond_br(lflag, rhs_bb, merge),
            BinOpKind::LogicalOr => self.builder.cond_br(lflag, merge, rhs_bb),
            _ => {
                return self.err(
                    "internal error: lower_short_circuit needs a short-circuit operator",
                    span,
                )
            }
        }
        self.builder.switch_to(rhs_bb);
        let (rv, rty) = self.lower_expr(rhs)?;
        let rflag = self.make_cond(rv, &rty, span)?;
        let rhs_end = self.builder.current_block();
        self.set_origin(span);
        self.builder.br(merge);
        self.builder.switch_to(merge);
        let short_value = Operand::bool(op == BinOpKind::LogicalOr);
        let phi = self
            .builder
            .phi(Type::Bool, vec![(lhs_end, short_value), (rhs_end, rflag)]);
        Ok((phi, CType::Bool))
    }

    /// Convert a value to a boolean condition (`!= 0` / `!= NULL`).
    fn make_cond(&mut self, v: Operand, ty: &CType, span: &Span) -> Result<Operand, Diag> {
        self.set_origin(span);
        Ok(match ty {
            CType::Bool => v,
            CType::Pointer(_) => {
                let is_null = self.builder.is_null(v);
                self.builder.cmp(CmpPred::Eq, is_null, Operand::bool(false))
            }
            CType::Int { .. } => {
                let zero = Operand::int(ctype_to_ir(ty), 0);
                self.builder.cmp(CmpPred::Ne, v, zero)
            }
            CType::Void => return self.err("void value used as a condition", span),
        })
    }

    /// Convert between C types, inserting the appropriate IR cast.
    fn convert(
        &mut self,
        v: Operand,
        from: &CType,
        to: &CType,
        span: &Span,
    ) -> Result<Operand, Diag> {
        if from == to {
            return Ok(v);
        }
        self.set_origin(span);
        let result = match (from, to) {
            (CType::Bool, CType::Int { width, .. }) => self.builder.zext(v, Type::Int(*width)),
            (CType::Bool, CType::Pointer(_)) => {
                let wide = self.builder.zext(v, Type::I64);
                Operand::Inst(
                    self.builder
                        .emit(InstKind::IntToPtr { value: wide }, Type::Ptr),
                )
            }
            (CType::Int { .. }, CType::Bool) => {
                let zero = Operand::int(ctype_to_ir(from), 0);
                self.builder.cmp(CmpPred::Ne, v, zero)
            }
            (
                CType::Int {
                    width: wf,
                    signed: sf,
                },
                CType::Int { width: wt, .. },
            ) => {
                if wt > wf {
                    if *sf {
                        self.builder.sext(v, Type::Int(*wt))
                    } else {
                        self.builder.zext(v, Type::Int(*wt))
                    }
                } else if wt < wf {
                    self.builder.trunc(v, Type::Int(*wt))
                } else {
                    v // same width, only signedness differs
                }
            }
            (CType::Int { width, signed }, CType::Pointer(_)) => {
                if v.is_const_value(0) {
                    Operand::null()
                } else {
                    let wide = if *width < 64 {
                        if *signed {
                            self.builder.sext(v, Type::I64)
                        } else {
                            self.builder.zext(v, Type::I64)
                        }
                    } else {
                        v
                    };
                    Operand::Inst(
                        self.builder
                            .emit(InstKind::IntToPtr { value: wide }, Type::Ptr),
                    )
                }
            }
            (CType::Pointer(_), CType::Int { width, .. }) => {
                let int = Operand::Inst(
                    self.builder
                        .emit(InstKind::PtrToInt { value: v }, Type::I64),
                );
                if *width < 64 {
                    self.builder.trunc(int, Type::Int(*width))
                } else {
                    int
                }
            }
            (CType::Pointer(_), CType::Pointer(_)) => v,
            (CType::Pointer(_), CType::Bool) => {
                let n = self.builder.is_null(v);
                self.builder.cmp(CmpPred::Eq, n, Operand::bool(false))
            }
            (CType::Void, _) | (_, CType::Void) => {
                return self.err(&format!("cannot convert between {from:?} and {to:?}"), span)
            }
            (CType::Bool, CType::Bool) => v,
        };
        Ok(result)
    }

    /// Return type of a called function: defined in this unit, a known
    /// library function, or `int` by default.
    fn callee_return_type(&self, name: &str) -> CType {
        if let Some(ty) = self.signatures.get(name) {
            return ty.clone();
        }
        match name {
            "malloc" | "calloc" | "realloc" | "__string_literal" => CType::ptr_to(CType::char_ty()),
            "strchr" | "strrchr" | "strstr" | "memchr" => CType::ptr_to(CType::char_ty()),
            "memcpy" | "memmove" | "memset" => CType::ptr_to(CType::Void),
            "free" => CType::Void,
            "abs" => CType::int(),
            "labs" | "llabs" => CType::long(),
            "strlen" | "simple_strtoul" | "strtoul" => CType::ulong(),
            "strtol" | "strtoll" => CType::long(),
            _ => CType::int(),
        }
    }
}

/// Map a C type to an IR type.
pub fn ctype_to_ir(ty: &CType) -> Type {
    match ty {
        CType::Void => Type::Void,
        CType::Bool => Type::Bool,
        CType::Int { width, .. } => Type::Int(*width),
        CType::Pointer(_) => Type::Ptr,
    }
}

/// The usual arithmetic conversions, simplified: promote to the wider of the
/// operands (at least `int`); the result is unsigned if either promoted
/// operand is unsigned at the common width.
fn common_type(a: &CType, b: &CType) -> CType {
    let (wa, sa) = int_info(a);
    let (wb, sb) = int_info(b);
    let width = wa.max(wb).max(32);
    let signed = match wa.cmp(&wb) {
        std::cmp::Ordering::Greater => sa,
        std::cmp::Ordering::Less => sb,
        std::cmp::Ordering::Equal => sa && sb,
    };
    CType::Int { width, signed }
}

fn int_info(t: &CType) -> (u32, bool) {
    match t {
        CType::Int { width, signed } => (*width, *signed),
        CType::Bool => (1, false),
        CType::Pointer(_) => (64, false),
        CType::Void => (32, true),
    }
}

/// The IR predicate of a comparison operator, or `None` for a
/// non-comparison operator (callers surface that as a lowering [`Diag`],
/// never a panic — the library must stay panic-free on any input).
fn comparison_pred(op: BinOpKind, signed: bool) -> Option<CmpPred> {
    Some(match (op, signed) {
        (BinOpKind::Eq, _) => CmpPred::Eq,
        (BinOpKind::Ne, _) => CmpPred::Ne,
        (BinOpKind::Lt, true) => CmpPred::Slt,
        (BinOpKind::Lt, false) => CmpPred::Ult,
        (BinOpKind::Le, true) => CmpPred::Sle,
        (BinOpKind::Le, false) => CmpPred::Ule,
        (BinOpKind::Gt, true) => CmpPred::Sgt,
        (BinOpKind::Gt, false) => CmpPred::Ugt,
        (BinOpKind::Ge, true) => CmpPred::Sge,
        (BinOpKind::Ge, false) => CmpPred::Uge,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack_ir::verify_function;

    fn compile_ok(src: &str) -> Module {
        let m = compile(src, "test.c").expect("compilation should succeed");
        for f in m.functions() {
            if let Err(errs) = verify_function(f) {
                panic!(
                    "verification of {} failed: {:?}\n{}",
                    f.name,
                    errs,
                    stack_ir::print_function(f)
                );
            }
        }
        m
    }

    #[test]
    fn lower_figure1_pointer_overflow_check() {
        let m = compile_ok(
            "int check(char *buf, char *buf_end, unsigned int len) {\n\
               if (buf + len >= buf_end) return -1;\n\
               if (buf + len < buf) return -1;\n\
               return 0;\n\
             }",
        );
        let f = m.function("check").unwrap();
        // Expect pointer arithmetic and pointer comparisons in the IR.
        let text = stack_ir::print_function(f);
        assert!(text.contains("ptradd"));
        assert!(text.contains("icmp ult") || text.contains("icmp uge"));
        assert!(f.num_blocks() >= 5);
    }

    #[test]
    fn lower_figure2_null_check_after_deref() {
        let m = compile_ok(
            "int poll(struct tun_struct *tun) {\n\
               long sk = tun->sk;\n\
               if (!tun) return 1;\n\
               return 0;\n\
             }",
        );
        let f = m.function("poll").unwrap();
        let text = stack_ir::print_function(f);
        // The member access becomes a load through the parameter; the null
        // check becomes a pointer comparison against null.
        assert!(text.contains("load i64"));
        assert!(text.contains("null"));
    }

    #[test]
    fn lower_signed_division_and_overflow_check() {
        let m = compile_ok(
            "int64_t int8div(int64_t arg1, int64_t arg2) {\n\
               if (arg2 == 0) return -1;\n\
               int64_t result = arg1 / arg2;\n\
               if (arg2 == -1 && arg1 < 0 && result <= 0) return -2;\n\
               return result;\n\
             }",
        );
        let f = m.function("int8div").unwrap();
        let text = stack_ir::print_function(f);
        assert!(text.contains("sdiv i64"));
        // Short-circuit && produces extra blocks and a phi.
        assert!(text.contains("phi"));
    }

    #[test]
    fn lower_shift_and_unsigned_ops() {
        let m = compile_ok(
            "unsigned int f(unsigned int x, int s) {\n\
               unsigned int a = x << s;\n\
               unsigned int b = x >> s;\n\
               unsigned int c = x / 3;\n\
               return a + b + c;\n\
             }",
        );
        let text = stack_ir::print_function(m.function("f").unwrap());
        assert!(text.contains("shl i32"));
        assert!(text.contains("lshr i32"));
        assert!(text.contains("udiv i32"));
    }

    #[test]
    fn lower_array_indexing_with_bound() {
        let m = compile_ok(
            "int f(int i) {\n\
               char buf[15];\n\
               buf[i] = 1;\n\
               return buf[0];\n\
             }",
        );
        let text = stack_ir::print_function(m.function("f").unwrap());
        assert!(text.contains("bound 15"));
        assert!(text.contains("alloca i8 x 15"));
    }

    #[test]
    fn lower_loops_and_calls() {
        let m = compile_ok(
            "int sum(int n) {\n\
               int total = 0;\n\
               for (int i = 0; i < n; i = i + 1) total += i;\n\
               while (total > 1000) total = total - helper(total);\n\
               return total;\n\
             }\n\
             int helper(int x) { return x / 2; }",
        );
        assert_eq!(m.len(), 2);
        let text = stack_ir::print_function(m.function("sum").unwrap());
        assert!(text.contains("call i32 @helper"));
        // Loop structure: at least header/body/exit blocks for both loops.
        assert!(m.function("sum").unwrap().num_blocks() >= 7);
    }

    #[test]
    fn lower_abs_and_ternary() {
        let m = compile_ok(
            "int f(int x) {\n\
               int a = abs(x);\n\
               return a < 0 ? -a : a;\n\
             }",
        );
        let text = stack_ir::print_function(m.function("f").unwrap());
        assert!(text.contains("call i32 @abs"));
        assert!(text.contains("phi"));
    }

    #[test]
    fn macro_expanded_code_is_tagged() {
        let m = compile_ok(
            "#define IS_VALID(p) (p != NULL)\n\
             int f(char *p) {\n\
               long v = *p;\n\
               if (IS_VALID(p)) return 1;\n\
               return 0;\n\
             }",
        );
        let f = m.function("f").unwrap();
        // At least one instruction must be marked as macro-expanded.
        let any_macro = f.all_insts().iter().any(|&(_, i)| {
            matches!(
                f.inst(i).origin.kind,
                stack_ir::OriginKind::MacroExpansion { .. }
            )
        });
        assert!(any_macro, "{}", stack_ir::print_function(f));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let err = compile("int f(void) { return x; }", "t.c").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn post_increment_returns_old_value() {
        let m = compile_ok("int f(int x) { int y = x++; return y; }");
        let text = stack_ir::print_function(m.function("f").unwrap());
        assert!(text.contains("add i32"));
    }

    #[test]
    fn strchr_plus_one_null_check_lowering() {
        // The Figure 11 pattern from the Linux kernel sysctl code.
        let m = compile_ok(
            "int parse(char *buf) {\n\
               char *nodep = strchr(buf, '.') + 1;\n\
               if (!nodep) return -5;\n\
               return 0;\n\
             }",
        );
        let text = stack_ir::print_function(m.function("parse").unwrap());
        assert!(text.contains("call ptr @strchr") || text.contains("call i8"));
        assert!(text.contains("ptradd"));
    }
}
