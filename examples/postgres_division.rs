//! The Postgres signed-division case study of §6.2.1 (Figure 10) and the
//! time-bomb follow-up fix of Figure 14: the overflow check placed after the
//! division is unstable, and the developers' replacement check is a time
//! bomb that a future compiler may also discard.
//!
//! Run with: `cargo run --example postgres_division`

use stack_core::{classify_source, Checker};
use stack_corpus::{FIG10_POSTGRES_DIVISION, FIG14_POSTGRES_TIMEBOMB};

fn main() {
    let checker = Checker::new();
    for (pattern, note) in [
        (FIG10_POSTGRES_DIVISION, "original int8div overflow check"),
        (FIG14_POSTGRES_TIMEBOMB, "developers' replacement check"),
    ] {
        println!("=== {note} ({}) ===", pattern.paper_ref);
        println!("{}\n", pattern.source);
        let result = checker
            .check_source(pattern.source, &format!("{}.c", pattern.id))
            .unwrap();
        for report in &result.reports {
            print!("{report}");
            let class = classify_source(pattern.source, &format!("{}.c", pattern.id), report.line);
            println!("  classification: {}\n", class.label());
        }
    }
}
