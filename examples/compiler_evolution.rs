//! The §2.3 compiler-evolution study: which compilers discard which unstable
//! checks, and how gcc's behaviour changes across a decade of releases
//! (Figure 4), plus the effect of the `-fwrapv` style opt-out flags (§7).
//!
//! Run with: `cargo run --example compiler_evolution`

use stack_opt::{lowest_discarding_level, survey_compilers, with_fwrapv};

fn main() {
    let signed_check = "int f(int x) { if (x + 100 < x) return 1; return 0; }";
    println!("check: if (x + 100 < x)   (signed overflow, §2.2 example 3)\n");
    for profile in survey_compilers() {
        let level = lowest_discarding_level(signed_check, "f", &profile);
        let with_flag = lowest_discarding_level(signed_check, "f", &with_fwrapv(&profile));
        println!(
            "  {:<18} discards at {:<4} with -fwrapv: {}",
            profile.name,
            level
                .map(|l| format!("-O{l}"))
                .unwrap_or_else(|| "–".into()),
            with_flag
                .map(|l| format!("-O{l}"))
                .unwrap_or_else(|| "kept".into()),
        );
    }
}
