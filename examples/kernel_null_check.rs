//! The Linux kernel case studies: Figure 2 (null check after dereference) and
//! Figure 11 (the sysctl `strchr(...) + 1` check), including the
//! urgent-vs-time-bomb classification of §6.2.
//!
//! Run with: `cargo run --example kernel_null_check`

use stack_core::{classify_source, Checker};
use stack_corpus::{FIG11_STRCHR_NULL_CHECK, FIG2_TUN_NULL_CHECK};

fn main() {
    let checker = Checker::new();
    for pattern in [FIG2_TUN_NULL_CHECK, FIG11_STRCHR_NULL_CHECK] {
        println!("=== {} ({}) ===", pattern.id, pattern.paper_ref);
        println!("{}\n", pattern.source);
        let result = checker
            .check_source(pattern.source, &format!("{}.c", pattern.id))
            .unwrap();
        for report in &result.reports {
            print!("{report}");
            let class = classify_source(pattern.source, &format!("{}.c", pattern.id), report.line);
            println!("  classification: {}\n", class.label());
        }
    }
}
