//! Quickstart: run the STACK checker on a small C fragment and print the
//! unstable-code reports.
//!
//! Run with: `cargo run --example quickstart`

use stack_core::Checker;

fn main() {
    // The null-pointer-check-after-dereference bug of the paper's Figure 2
    // (CVE-2009-1897 in the Linux TUN driver).
    let source = "int tun_chr_poll(struct tun_struct *tun) {\n\
                    long sk = tun->sk;\n\
                    if (!tun) return 1;\n\
                    return 0;\n\
                  }";
    let result = Checker::new()
        .check_source(source, "tun.c")
        .expect("the example compiles");

    println!(
        "analyzed {} function(s), {} solver queries\n",
        result.stats.functions, result.stats.queries
    );
    if result.reports.is_empty() {
        println!("no unstable code found");
    }
    for report in &result.reports {
        print!("{report}");
    }
}
