//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`
//!   block form;
//! * integer-range strategies (`0usize..10`, `1u32..1000`) and
//!   `any::<T>()` for unsigned integers and `bool`;
//! * tuple strategies (`(0..8, any::<bool>())`) and
//!   `prop::collection::vec(element, len_range)`;
//! * `prop_assert!` (a message-forwarding `assert!`).
//!
//! Inputs are drawn from a deterministic SplitMix64 stream, so failures are
//! reproducible run to run. There is no shrinking: a failing case reports
//! the assertion message with the concrete inputs interpolated by the test
//! body itself.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream feeding the strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed seed: every run explores the same cases, so CI is stable and
    /// failures reproduce locally.
    pub fn deterministic() -> TestRng {
        TestRng {
            state: 0x5EED_CAFE_F00D_0001,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_int_strategy!(u8, u16, u32, u64, usize);

/// A type with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Tuples of strategies sample component-wise, left to right.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `len` elements, each sampled from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing subsets of a fixed base vector (see [`subset`]).
    #[derive(Clone, Debug)]
    pub struct SubsetStrategy<T> {
        base: Vec<T>,
    }

    /// A subset of `base`: each element is independently kept with
    /// probability 1/2, preserving the base order. May be empty or the
    /// full set.
    pub fn subset<T: Clone>(base: Vec<T>) -> SubsetStrategy<T> {
        SubsetStrategy { base }
    }

    impl<T: Clone> Strategy for SubsetStrategy<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            self.base
                .iter()
                .filter(|_| rng.next_u64() & 1 == 1)
                .cloned()
                .collect()
        }
    }

    /// Strategy producing fixed-size draws from a base vector (see
    /// [`sample`]).
    #[derive(Clone, Debug)]
    pub struct SampleStrategy<T> {
        base: Vec<T>,
        count: Range<usize>,
    }

    /// `n` distinct elements of `base` (with `n` drawn from `count`,
    /// clamped to the base length), in base order. Unlike [`subset`] the
    /// draw size is controlled, which keeps e.g. assumption sets small
    /// relative to the literal pool.
    pub fn sample<T: Clone>(base: Vec<T>, count: Range<usize>) -> SampleStrategy<T> {
        SampleStrategy { base, count }
    }

    impl<T: Clone> Strategy for SampleStrategy<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let n = Strategy::sample(&self.count, rng).min(self.base.len());
            // Partial Fisher-Yates over an index vector: the first `n`
            // slots end up holding a uniform distinct draw.
            let mut idx: Vec<usize> = (0..self.base.len()).collect();
            for i in 0..n {
                let j = i + (rng.next_u64() as usize) % (idx.len() - i);
                idx.swap(i, j);
            }
            let mut picked: Vec<usize> = idx[..n].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| self.base[i].clone()).collect()
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: uniform over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Like `assert!`, but named to match proptest call sites.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, but named to match proptest call sites.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The proptest block macro: expands each `fn name(arg in strategy, ...)` to
/// a plain `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let run = || $body;
                    let _case = case;
                    run();
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 1u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        #[test]
        fn any_is_exercised(v in any::<u16>()) {
            let widened = u32::from(v);
            prop_assert!(widened <= u32::from(u16::MAX));
        }

        #[test]
        fn subsets_preserve_order(s in prop::collection::subset(vec![1u32, 2, 3, 4, 5])) {
            prop_assert!(s.len() <= 5);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn samples_are_distinct(s in prop::collection::sample(vec![10u32, 20, 30, 40], 1..4)) {
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
