//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace actually
//! uses — structs with named fields, and enums whose variants are units or
//! have named fields — without depending on `syn`/`quote` (the build
//! environment has no registry access). The input item is parsed textually:
//! attributes are stripped with a string-literal-aware bracket matcher, then
//! the item kind, name, and field/variant identifiers are read off.
//!
//! Generated code targets the `serde` shim's JSON-writing trait and matches
//! real serde's externally-tagged encoding (unit variant -> `"Variant"`,
//! struct variant -> `{"Variant":{...}}`), so swapping in the real serde
//! later is source-compatible.

use proc_macro::TokenStream;
use std::fmt::Write as _;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let src = strip_attributes(&strip_comments(&input.to_string()));
    match generate(&src) {
        Ok(out) => out.parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Remove `//`-to-end-of-line and `/* ... */` comments (rustc stringifies
/// doc comments back to their `///` form), skipping string literals.
fn strip_comments(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                out.push('"');
                i += 1;
                while i < chars.len() {
                    out.push(chars[i]);
                    match chars[i] {
                        '\\' => {
                            if i + 1 < chars.len() {
                                out.push(chars[i + 1]);
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    i += 1;
                }
                i += 2;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Remove every `#[...]` / `#![...]` attribute (including doc comments, which
/// reach the macro as `#[doc = "..."]`), skipping over string literals so a
/// `]` inside a doc string does not end the attribute early.
fn strip_attributes(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '#' {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_whitespace() || chars[j] == '!') {
                j += 1;
            }
            if j < chars.len() && chars[j] == '[' {
                i = skip_bracketed(&chars, j);
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

/// Given `chars[open] == '['`, return the index just past the matching `]`.
fn skip_bracketed(chars: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => break,
                        _ => i += 1,
                    }
                }
            }
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len()
}

fn generate(src: &str) -> Result<String, String> {
    let tokens: Vec<&str> = src.split_whitespace().collect();
    let joined = tokens.join(" ");

    let (kind, rest) = if let Some(pos) = find_keyword(&joined, "enum") {
        ("enum", &joined[pos + "enum".len()..])
    } else if let Some(pos) = find_keyword(&joined, "struct") {
        ("struct", &joined[pos + "struct".len()..])
    } else {
        return Err("derive(Serialize): expected a struct or enum".to_string());
    };

    let rest = rest.trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return Err("derive(Serialize): cannot read item name".to_string());
    }
    let after_name = rest[name.len()..].trim_start();
    if after_name.starts_with('<') {
        return Err(
            "derive(Serialize): generic items are not supported by the offline shim".to_string(),
        );
    }
    let Some(body) = after_name
        .strip_prefix('{')
        .and_then(|b| b.trim_end().strip_suffix('}'))
    else {
        return Err(format!(
            "derive(Serialize): unsupported item shape for `{name}` (tuple structs are not supported by the offline shim)"
        ));
    };

    let mut code = String::new();
    let _ = write!(
        code,
        "impl ::serde::Serialize for {name} {{ fn serialize_json(&self, out: &mut ::std::string::String) {{ "
    );
    match kind {
        "struct" => {
            let fields = named_fields(body)?;
            if fields.is_empty() {
                return Err(format!("derive(Serialize): `{name}` has no named fields"));
            }
            code.push_str("out.push('{');");
            for (i, f) in fields.iter().enumerate() {
                let first = i == 0;
                let _ = write!(
                    code,
                    "::serde::ser::write_field(out, {f:?}, &self.{f}, {first});"
                );
            }
            code.push_str("out.push('}');");
        }
        _ => {
            code.push_str("match self { ");
            for variant in split_top_level(body) {
                let variant = variant.trim();
                if variant.is_empty() {
                    continue;
                }
                let vname: String = variant
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                let after = variant[vname.len()..].trim_start();
                if after.is_empty() {
                    let _ = write!(
                        code,
                        "{name}::{vname} => ::serde::ser::write_json_string(out, {vname:?}), "
                    );
                } else if let Some(vbody) = after
                    .strip_prefix('{')
                    .and_then(|b| b.trim_end().strip_suffix('}'))
                {
                    let fields = named_fields(vbody)?;
                    let pat = fields.join(", ");
                    let _ = write!(code, "{name}::{vname} {{ {pat} }} => {{ ");
                    code.push_str("out.push('{');");
                    let _ = write!(code, "::serde::ser::write_json_string(out, {vname:?});");
                    code.push_str("out.push(':');out.push('{');");
                    for (i, f) in fields.iter().enumerate() {
                        let first = i == 0;
                        let _ =
                            write!(code, "::serde::ser::write_field(out, {f:?}, {f}, {first});");
                    }
                    code.push_str("out.push('}');out.push('}'); } ");
                } else {
                    return Err(format!(
                        "derive(Serialize): tuple variant `{name}::{vname}` is not supported by the offline shim"
                    ));
                }
            }
            code.push_str("} ");
        }
    }
    code.push_str("} }");
    Ok(code)
}

/// Find `kw` as a standalone word (preceded by start/space, followed by space).
fn find_keyword(s: &str, kw: &str) -> Option<usize> {
    let pat = format!("{kw} ");
    if let Some(stripped) = s.strip_prefix(&pat) {
        let _ = stripped;
        return Some(0);
    }
    s.find(&format!(" {kw} ")).map(|p| p + 1)
}

/// Split a brace-delimited body at top-level commas.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '{' | '(' | '<' | '[' => {
                depth += 1;
                current.push(c);
            }
            '}' | ')' | '>' | ']' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

/// Extract the identifiers of `name: Type` fields from a struct/variant body.
fn named_fields(body: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for part in split_top_level(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((lhs, _ty)) = part.split_once(':') else {
            return Err(format!("derive(Serialize): cannot parse field `{part}`"));
        };
        let ident = lhs
            .trim()
            .rsplit(|c: char| c.is_whitespace())
            .next()
            .unwrap_or("")
            .to_string();
        if ident.is_empty() || !ident.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!("derive(Serialize): cannot parse field `{part}`"));
        }
        fields.push(ident);
    }
    Ok(fields)
}
