//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — as a small wall-clock
//! harness: a warm-up, then timed samples, reporting the median ns/iter to
//! stdout. There is no statistical analysis, HTML report, or `target/
//! criterion` output; the point is that `cargo bench` runs and prints
//! comparable numbers. Set `STACK_BENCH_FAST=1` to shrink sample time (used
//! by CI's bench smoke).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let fast = std::env::var_os("STACK_BENCH_FAST").is_some();
        Criterion {
            sample_time: if fast {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(300)
            },
        }
    }
}

impl Criterion {
    /// Run one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_time: self.sample_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(ns_per_iter) => println!("bench: {name:<45} {ns_per_iter:>12.1} ns/iter"),
            None => println!("bench: {name:<45} (no iterations)"),
        }
        self
    }

    /// Open a named group; benchmarks in it report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` measures the supplied routine.
pub struct Bencher {
    sample_time: Duration,
    result: Option<f64>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: find how many iterations fit
        // in roughly 1/10 of the sample budget.
        let calibration_start = Instant::now();
        let mut batch = 0u64;
        while calibration_start.elapsed() < self.sample_time / 10 || batch == 0 {
            black_box(routine());
            batch += 1;
        }

        let mut samples = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.sample_time {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = samples.get(samples.len() / 2).copied();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a `harness = false` bench target. Ignores the arguments
/// cargo passes (`--bench`, filters): every group always runs in full.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("STACK_BENCH_FAST", "1");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(3u64) * 7));
    }
}
