//! Offline stand-in for the `serde_json` crate.
//!
//! Provides `to_string` and `to_string_pretty` over the `serde` shim's
//! JSON-writing trait. Serialization in this workspace is infallible, so
//! [`Error`] is never constructed; the `Result` return types exist for
//! call-site compatibility with the real serde_json.

use std::fmt;

/// Serialization error. Never produced by this shim; present so call sites
/// written against the real serde_json (`.unwrap()` etc.) compile unchanged.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indent a compact JSON document. Operates on the text while tracking
/// string-literal state, so braces and commas inside strings are untouched.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = chars.next() {
                        out.push(esc);
                    }
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    /// Exercises the `#[derive(Serialize)]` shim from a consumer crate (the
    /// generated code names the `serde` crate absolutely, so it cannot be
    /// tested from inside `serde` itself). Doc comments on fields and
    /// variants deliberately stress the derive's textual parser.
    #[derive(Serialize)]
    struct Point {
        /// Horizontal coordinate.
        x: i32,
        label: String,
    }

    #[derive(Serialize)]
    enum Shade {
        /// A unit variant, encoded as a bare string.
        Light,
        /// A struct variant, encoded with external tagging.
        Custom { r: u8, g: u8 },
    }

    #[test]
    fn derived_struct_and_enum() {
        let p = Point {
            x: -4,
            label: "p".to_string(),
        };
        assert_eq!(super::to_string(&p).unwrap(), r#"{"x":-4,"label":"p"}"#);
        assert_eq!(super::to_string(&Shade::Light).unwrap(), r#""Light""#);
        assert_eq!(
            super::to_string(&Shade::Custom { r: 1, g: 2 }).unwrap(),
            r#"{"Custom":{"r":1,"g":2}}"#
        );
    }

    #[test]
    fn compact_and_pretty() {
        let v = vec!["a".to_string(), "b{c}".to_string()];
        assert_eq!(super::to_string(&v).unwrap(), r#"["a","b{c}"]"#);
        let pretty = super::to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  \"a\",\n  \"b{c}\"\n]");
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v: Vec<u8> = Vec::new();
        assert_eq!(super::to_string_pretty(&v).unwrap(), "[]");
    }
}
