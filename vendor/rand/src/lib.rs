//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the corpus synthesizer uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer `Range`/`RangeInclusive` bounds. The generator is SplitMix64 —
//! deterministic given the seed, which is all the synthetic-population
//! experiments need (they fix seeds for reproducibility). The stream differs
//! from the real `StdRng`, so populations generated here are self-consistent
//! but not bit-identical to ones generated with the real crate.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from an integer range (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        // 53 random bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange for Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl SampleRange for RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every u64 is valid.
                        return start.wrapping_add(rng.next_u64() as $t);
                    }
                    start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*
    };
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "suspicious bias: {hits}");
    }
}
