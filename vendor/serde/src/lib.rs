//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so `vendor/` carries minimal API-compatible shims for the
//! handful of external crates the workspace uses. This one provides the
//! subset of serde that the STACK reproduction needs: a [`Serialize`] trait
//! that renders directly to compact JSON, plus a derive macro
//! (`#[derive(Serialize)]`) for structs with named fields and for enums with
//! unit or struct variants, matching serde's externally-tagged encoding.
//!
//! The `serde_json` shim builds its `to_string` / `to_string_pretty` on top
//! of this trait. Swapping in the real serde later only requires changing
//! the `[workspace.dependencies]` path entries to registry versions — the
//! call sites and derive attributes are already idiomatic serde.

pub use serde_derive::Serialize;

/// A type that can render itself as compact JSON.
///
/// This is the stand-in for `serde::Serialize`; instead of the full
/// serializer abstraction it writes JSON text directly, which is the only
/// output format the workspace uses.
pub trait Serialize {
    /// Append this value's compact JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

macro_rules! impl_serialize_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {
                fn serialize_json(&self, out: &mut String) {
                    out.push_str(&self.to_string());
                }
            }
        )*
    };
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_float {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {
                fn serialize_json(&self, out: &mut String) {
                    if self.is_finite() {
                        // `{:?}` always includes a decimal point or exponent,
                        // matching real serde_json's float formatting.
                        out.push_str(&format!("{self:?}"));
                    } else {
                        // JSON has no NaN/Infinity; real serde_json errors
                        // here, the shim degrades to null.
                        out.push_str("null");
                    }
                }
            }
        )*
    };
}

impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser::write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

/// Helpers used by the derive macro's generated code.
pub mod ser {
    use super::Serialize;

    /// Append `s` to `out` as a JSON string literal, escaping as needed.
    pub fn write_json_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Append one `"key":value` object member, with a leading comma unless
    /// this is the first member.
    pub fn write_field<T: Serialize + ?Sized>(out: &mut String, key: &str, value: &T, first: bool) {
        if !first {
            out.push(',');
        }
        write_json_string(out, key);
        out.push(':');
        value.serialize_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        let mut out = String::new();
        vec![1u32, 2, 3].serialize_json(&mut out);
        assert_eq!(out, "[1,2,3]");

        let mut out = String::new();
        "a\"b\\c\nd".serialize_json(&mut out);
        assert_eq!(out, r#""a\"b\\c\nd""#);

        let mut out = String::new();
        Option::<u8>::None.serialize_json(&mut out);
        assert_eq!(out, "null");
    }
}
