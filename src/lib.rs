//! `stack-repro` — a Rust reproduction of *Towards Optimization-Safe Systems:
//! Analyzing the Impact of Undefined Behavior* (Wang et al., SOSP 2013).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`solver`] — the QF_BV decision procedure (Boolector stand-in);
//! * [`ir`] — the SSA intermediate representation (LLVM IR stand-in);
//! * [`minic`] — the mini-C frontend (clang stand-in);
//! * [`opt`] — optimizer passes and the Figure 4 compiler profiles;
//! * [`core`] — the STACK checker itself;
//! * [`corpus`] — the unstable-code corpora used by the experiments.
//!
//! See `examples/quickstart.rs` for the three-line usage pattern, and the
//! `stack-bench` crate for the binaries that regenerate every table and
//! figure of the paper's evaluation.

pub use stack_core as core;
pub use stack_corpus as corpus;
pub use stack_ir as ir;
pub use stack_minic as minic;
pub use stack_opt as opt;
pub use stack_solver as solver;

pub use stack_core::{
    Algorithm, AnalysisSession, BugReport, CheckResult, Checker, CheckerConfig, ScanPipeline,
    ScanStore, UbKind,
};
pub use stack_solver::{DiskQueryStore, QueryStore};
