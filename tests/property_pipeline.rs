//! Property-based tests over the whole pipeline: randomly generated programs
//! from the corpus templates must compile, verify, survive the analysis
//! pre-pass, and never make the checker panic; solver terms built from the
//! frontend must agree with concrete evaluation.

use proptest::prelude::*;
use stack_repro::core::{Checker, CheckerConfig};
use stack_repro::corpus::{bug_template, UB_COLUMNS};
use stack_repro::solver::{BvSolver, QueryResult, TermPool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every bug template, for arbitrary instantiation indices, compiles,
    /// verifies, and produces at least one report.
    #[test]
    fn bug_templates_always_yield_reports(ub_idx in 0usize..10, n in 1usize..50) {
        let ub = UB_COLUMNS[ub_idx];
        let src = bug_template(ub, "probe", n);
        let mut module = stack_repro::minic::compile(&src, "prop.c").unwrap();
        stack_repro::ir::verify_module(&module).unwrap();
        stack_repro::opt::optimize_for_analysis(&mut module);
        stack_repro::ir::verify_module(&module).unwrap();
        let result = Checker::new().check_module(&module);
        prop_assert!(!result.reports.is_empty(), "{ub}: {src}");
    }

    /// Reports are identical across worker-thread counts and with the SAT
    /// core's preprocessing layer on or off: every query here is decided
    /// (no budget), so the two solver configurations must produce the same
    /// verdicts and therefore byte-identical reports.
    #[test]
    fn reports_stable_across_threads_and_preprocessing(ub_idx in 0usize..10, n in 1usize..30) {
        let ub = UB_COLUMNS[ub_idx];
        let src = bug_template(ub, "stable", n);
        let render = |threads: usize, preprocess: bool| {
            let checker = Checker::with_config(CheckerConfig {
                threads: Some(threads),
                query_cache: false,
                preprocess,
                ..CheckerConfig::default()
            });
            let result = checker.check_source(&src, "prop.c").expect("template compiles");
            result
                .reports
                .iter()
                .map(|r| format!("{r:?}"))
                .collect::<Vec<_>>()
        };
        let reference = render(1, true);
        prop_assert!(!reference.is_empty(), "{ub}");
        prop_assert_eq!(&reference, &render(4, true));
        prop_assert_eq!(&reference, &render(1, false));
        prop_assert_eq!(&reference, &render(4, false));
    }

    /// The solver agrees with concrete evaluation: for random constants, the
    /// formula `x == a && y == b && (x op y) != (a op b)` is UNSAT.
    #[test]
    fn solver_matches_concrete_arithmetic(a in any::<u32>(), b in 1u32..1000) {
        let mut pool = TermPool::new();
        let mut solver = BvSolver::new();
        let x = pool.bv_var("x", 32);
        let y = pool.bv_var("y", 32);
        let ca = pool.bv_const(32, u64::from(a));
        let cb = pool.bv_const(32, u64::from(b));
        let xeq = pool.eq(x, ca);
        let yeq = pool.eq(y, cb);

        let sum = pool.bv_add(x, y);
        let expected_sum = pool.bv_const(32, u64::from(a.wrapping_add(b)));
        let sum_neq = pool.ne(sum, expected_sum);
        prop_assert!(solver.check(&pool, &[xeq, yeq, sum_neq]).is_unsat());

        let quot = pool.bv_udiv(x, y);
        let expected_quot = pool.bv_const(32, u64::from(a / b));
        let quot_neq = pool.ne(quot, expected_quot);
        prop_assert!(solver.check(&pool, &[xeq, yeq, quot_neq]).is_unsat());
    }

    /// Satisfiable queries return models that actually satisfy the asserted
    /// terms (model soundness end to end through bit-blasting).
    #[test]
    fn models_satisfy_assertions(target in any::<u16>()) {
        let mut pool = TermPool::new();
        let mut solver = BvSolver::new();
        let x = pool.bv_var("x", 16);
        let y = pool.bv_var("y", 16);
        let sum = pool.bv_add(x, y);
        let t = pool.bv_const(16, u64::from(target));
        let eq = pool.eq(sum, t);
        let xne = pool.ne(x, y);
        match solver.check(&pool, &[eq, xne]) {
            QueryResult::Sat(model) => {
                prop_assert!(model.eval_bool(&pool, eq));
                prop_assert!(model.eval_bool(&pool, xne));
            }
            QueryResult::Unsat => {
                // Only possible if no two distinct x, y sum to target — never
                // true for 16-bit arithmetic.
                prop_assert!(false, "unexpected UNSAT");
            }
            QueryResult::Unknown => {}
        }
    }
}
