//! Workspace smoke test: the `stack-repro` facade must re-export every layer
//! of the pipeline. Each assertion goes through the facade paths only, so a
//! wiring regression (dropped re-export, renamed module) fails `cargo test -q`
//! even when the underlying crates still pass their own suites.

use stack_repro::corpus::{all_patterns, FIG2_TUN_NULL_CHECK, UB_COLUMNS};
use stack_repro::solver::{BvSolver, QueryResult, TermPool};
use stack_repro::{Algorithm, CheckResult, Checker, CheckerConfig, UbKind};

#[test]
fn checker_reexport_analyzes_figure2() {
    let checker = Checker::new();
    let result: CheckResult = checker
        .check_source(FIG2_TUN_NULL_CHECK.source, "tun.c")
        .expect("Figure 2 example must compile");
    assert!(
        !result.reports.is_empty(),
        "Figure 2 example must be flagged as unstable"
    );
    assert!(result
        .reports
        .iter()
        .any(|r| r.involves(UbKind::NullPointerDereference)));
    assert!(result
        .reports
        .iter()
        .any(|r| r.algorithm == Algorithm::Elimination));
}

#[test]
fn checker_config_reexport_is_usable() {
    let checker = Checker::with_config(CheckerConfig {
        report_compiler_generated: true,
        ..CheckerConfig::default()
    });
    let result = checker
        .check_source(FIG2_TUN_NULL_CHECK.source, "tun.c")
        .unwrap();
    assert!(!result.reports.is_empty());
}

#[test]
fn solver_reexport_answers_queries() {
    let mut pool = TermPool::new();
    let mut solver = BvSolver::new();
    let x = pool.bv_var("x", 32);
    let zero = pool.bv_const(32, 0);
    let eq = pool.eq(x, zero);
    let ne = pool.ne(x, zero);
    // x == 0 is satisfiable; x == 0 && x != 0 is not.
    assert!(matches!(solver.check(&pool, &[eq]), QueryResult::Sat(_)));
    assert!(solver.check(&pool, &[eq, ne]).is_unsat());
}

#[test]
fn corpus_tables_reexported() {
    assert_eq!(UB_COLUMNS.len(), 10, "Figure 9 has ten UB columns");
    let patterns = all_patterns();
    assert!(
        patterns.len() >= 8,
        "corpus must expose the paper's figures; got {}",
        patterns.len()
    );
    assert!(patterns.iter().any(|p| p.id == FIG2_TUN_NULL_CHECK.id));
}

#[test]
fn pipeline_modules_reexported_end_to_end() {
    // minic -> ir -> opt through the facade module aliases.
    let mut module =
        stack_repro::minic::compile(FIG2_TUN_NULL_CHECK.source, "tun.c").expect("compiles");
    stack_repro::ir::verify_module(&module).expect("verifies");
    stack_repro::opt::optimize_for_analysis(&mut module);
    stack_repro::ir::verify_module(&module).expect("still verifies after optimization");
}
