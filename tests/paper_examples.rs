//! Cross-crate integration tests: run the full pipeline (frontend → analysis
//! pre-pass → checker) over every paper example in the corpus and check that
//! the expected reports appear (and that stable code stays clean).

use stack_repro::core::{Algorithm, Checker, UbKind};
use stack_repro::corpus;

fn check(source: &str, file: &str) -> stack_repro::core::CheckResult {
    Checker::new().check_source(source, file).expect("compiles")
}

#[test]
fn every_unstable_pattern_is_reported_and_every_stable_one_is_not() {
    for pattern in corpus::all_patterns() {
        let result = check(pattern.source, &format!("{}.c", pattern.id));
        if pattern.expect_report {
            assert!(
                !result.reports.is_empty(),
                "{} ({}): expected a report\n{}",
                pattern.id,
                pattern.paper_ref,
                pattern.source
            );
        } else {
            assert!(
                result.reports.is_empty(),
                "{} ({}): expected no reports, got {:?}",
                pattern.id,
                pattern.paper_ref,
                result.reports
            );
        }
    }
}

#[test]
fn figure2_report_names_the_dereference() {
    let p = corpus::FIG2_TUN_NULL_CHECK;
    let result = check(p.source, "tun.c");
    let report = result
        .reports
        .iter()
        .find(|r| r.involves(UbKind::NullPointerDereference))
        .expect("a null-dereference-based report");
    assert_eq!(report.function, "tun_chr_poll");
    // The minimal UB set points at line 2 (the tun->sk load).
    assert!(report.ub_sources.iter().any(|s| s.location.ends_with(":2")));
}

#[test]
fn figure12_is_found_by_the_algebra_oracle() {
    let p = corpus::FIG12_FFMPEG_BOUNDS;
    let result = check(p.source, "amf.c");
    assert!(result
        .reports
        .iter()
        .any(|r| r.algorithm == Algorithm::SimplifyAlgebra));
    assert!(result
        .reports
        .iter()
        .any(|r| r.involves(UbKind::PointerOverflow)));
}

#[test]
fn figure10_and_figure14_are_both_flagged_but_classified_differently() {
    let fig10 = corpus::FIG10_POSTGRES_DIVISION;
    let fig14 = corpus::FIG14_POSTGRES_TIMEBOMB;
    assert!(!check(fig10.source, "pg.c").reports.is_empty());
    assert!(!check(fig14.source, "pg2.c").reports.is_empty());
    // Figure 14 is a time bomb: no surveyed compiler discards it yet.
    let class = stack_repro::core::classify_source(fig14.source, "pg2.c", 2);
    assert_eq!(class, stack_repro::core::BugClass::TimeBomb);
}

#[test]
fn table1_idioms_are_flagged_with_the_right_ub_class() {
    // The hand-transcribed real-world idioms (libtool's post-dereference
    // null check, e1000e's memset-of-null, e2fsprogs' signed offset
    // overflow guard) must each yield a report involving the UB class the
    // paper attributes to them.
    let checker = Checker::new();
    for idiom in corpus::table1_idioms() {
        let result = checker
            .check_source(idiom.source, &format!("{}.c", idiom.id))
            .unwrap_or_else(|e| panic!("{}: {e}", idiom.id));
        let expected = match idiom.ub {
            "null" => UbKind::NullPointerDereference,
            "integer" => UbKind::SignedIntegerOverflow,
            "pointer" => UbKind::PointerOverflow,
            other => panic!("unexpected UB label {other}"),
        };
        assert!(
            result.reports.iter().any(|r| r.involves(expected)),
            "{} ({}): expected a {:?} report, got {:?}",
            idiom.id,
            idiom.paper_ref,
            expected,
            result.reports
        );
    }
}

#[test]
fn figure9_corpus_bugs_are_all_detected() {
    // Sample the per-system corpus (every 7th bug keeps the test fast) and
    // confirm each generated bug yields at least one report of a matching
    // UB class.
    let checker = Checker::new();
    for bug in corpus::figure9_corpus().iter().step_by(7) {
        let result = checker.check_source(&bug.source, &bug.file).unwrap();
        assert!(
            !result.reports.is_empty(),
            "{} ({}): expected a report\n{}",
            bug.file,
            bug.ub,
            bug.source
        );
    }
}

#[test]
fn compiler_profiles_discard_what_the_checker_flags() {
    // End-to-end consistency: the aggressive profile must discard the checks
    // in the §2.2 idioms that the checker reports as unstable.
    use stack_repro::opt::{most_aggressive, run_profile};
    for pattern in corpus::SEC22_EXAMPLES {
        let report_count = check(pattern.source, "x.c").reports.len();
        let mut module = stack_repro::minic::compile(pattern.source, "x.c").unwrap();
        let events = run_profile(&mut module, &most_aggressive(), 3);
        assert!(
            report_count > 0 && !events.is_empty(),
            "{}: checker reports {} but aggressive compiler events {}",
            pattern.id,
            report_count,
            events.len()
        );
    }
}

#[test]
fn checker_budget_exhaustion_is_counted_not_crashed() {
    use stack_repro::core::CheckerConfig;
    let tight = Checker::with_config(CheckerConfig {
        query_budget: 50,
        ..CheckerConfig::default()
    });
    // A function with multiplication makes queries expensive enough to hit a
    // 50-propagation budget.
    let src = "long f(long a, long b) { long p = a * b; if (p < a) return 1; return 0; }";
    let result = tight.check_source(src, "t.c").unwrap();
    assert!(result.stats.timeouts > 0);
}
