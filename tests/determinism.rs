//! Determinism of the parallel checker driver: analyzing the synthetic
//! corpus with `threads = 4` must produce exactly the same bug reports as
//! the sequential `threads = 1` run, with and without the query cache. The
//! driver stitches per-function results back in function order, so even the
//! raw report order must coincide; the assertions below compare origin-sorted
//! sets first (the contract) and the raw order second (the implementation
//! guarantee).

use stack_repro::core::{Checker, CheckerConfig};
use stack_repro::corpus::{generate, SynthConfig};

/// Render every report of a run as a stable string (Debug covers function,
/// file, line, algorithm, description, and the minimal UB set).
fn run(threads: usize, query_cache: bool) -> Vec<String> {
    let synth = SynthConfig {
        packages: 6,
        seed: 2024,
        ..SynthConfig::default()
    };
    let checker = Checker::with_config(CheckerConfig {
        threads: Some(threads),
        query_cache,
        ..CheckerConfig::default()
    });
    let mut out = Vec::new();
    for pkg in generate(&synth) {
        for file in &pkg.files {
            let result = checker
                .check_source(&file.source, &file.name)
                .expect("synthetic files compile");
            for report in &result.reports {
                out.push(format!("{report:?}"));
            }
        }
    }
    out
}

/// Origin-sorted copy (file, line, then the rest of the rendering).
fn sorted(mut reports: Vec<String>) -> Vec<String> {
    reports.sort();
    reports
}

#[test]
fn parallel_and_sequential_runs_agree() {
    let sequential = run(1, true);
    assert!(
        !sequential.is_empty(),
        "the synthetic corpus must produce reports"
    );
    let parallel = run(4, true);
    assert_eq!(
        sorted(sequential.clone()),
        sorted(parallel.clone()),
        "report sets must match"
    );
    assert_eq!(sequential, parallel, "report order must match too");
}

#[test]
fn cache_does_not_change_reports() {
    let cached = run(4, true);
    let uncached = run(4, false);
    assert_eq!(sorted(cached), sorted(uncached));
}
