//! Determinism of the parallel checker driver: analyzing the synthetic
//! corpus with `threads = 4` must produce exactly the same bug reports as
//! the sequential `threads = 1` run, with and without the query cache. The
//! driver stitches per-function results back in function order, so even the
//! raw report order must coincide; the assertions below compare origin-sorted
//! sets first (the contract) and the raw order second (the implementation
//! guarantee). The same contract extends across *processes*: a warm run
//! that answers its queries from a disk-backed store must produce
//! byte-identical reports to the cold run that populated it.

use stack_repro::core::{
    AnalysisSession, Checker, CheckerConfig, ScanEvent, ScanPipeline, ScanSource, ScanStore,
    ScanTask,
};
use stack_repro::corpus::{churn_archive, generate, generate_archive, ArchiveConfig, SynthConfig};
use stack_repro::solver::DiskQueryStore;
use std::sync::Arc;

/// Render every report of a run as a stable string (Debug covers function,
/// file, line, algorithm, description, and the minimal UB set).
fn run(threads: usize, query_cache: bool) -> Vec<String> {
    let synth = SynthConfig {
        packages: 6,
        seed: 2024,
        ..SynthConfig::default()
    };
    let checker = Checker::with_config(CheckerConfig {
        threads: Some(threads),
        query_cache,
        ..CheckerConfig::default()
    });
    let mut out = Vec::new();
    for pkg in generate(&synth) {
        for file in &pkg.files {
            let result = checker
                .check_source(&file.source, &file.name)
                .expect("synthetic files compile");
            for report in &result.reports {
                out.push(format!("{report:?}"));
            }
        }
    }
    out
}

/// Origin-sorted copy (file, line, then the rest of the rendering).
fn sorted(mut reports: Vec<String>) -> Vec<String> {
    reports.sort();
    reports
}

#[test]
fn parallel_and_sequential_runs_agree() {
    let sequential = run(1, true);
    assert!(
        !sequential.is_empty(),
        "the synthetic corpus must produce reports"
    );
    let parallel = run(4, true);
    assert_eq!(
        sorted(sequential.clone()),
        sorted(parallel.clone()),
        "report sets must match"
    );
    assert_eq!(sequential, parallel, "report order must match too");
}

#[test]
fn cache_does_not_change_reports() {
    let cached = run(4, true);
    let uncached = run(4, false);
    assert_eq!(sorted(cached), sorted(uncached));
}

/// The solver-configuration contract from the cache-miss critical path
/// work: with every query decided (no budget), the pre/inprocessing layer
/// and the incremental-instance granularity may change how much work the
/// SAT core does, but never which verdicts come back — so the report
/// stream must be byte-identical with preprocessing on or off, with
/// per-function or per-fragment instances, at every parallelism width,
/// all compared against the uncached sequential reference.
#[test]
fn preprocessing_and_granularity_do_not_change_reports() {
    let archive_cfg = ArchiveConfig {
        packages: 6,
        seed: 0x50AC,
        ..ArchiveConfig::default()
    };
    let files = generate_archive(&archive_cfg);
    let tasks: Vec<ScanTask> = files
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect();
    let run = |preprocess: bool, fragment_instances: bool, jobs: usize| {
        let session = AnalysisSession::new(CheckerConfig {
            threads: Some(1),
            query_cache: false,
            preprocess,
            fragment_instances,
            ..CheckerConfig::default()
        });
        let mut reports = Vec::new();
        ScanPipeline::new(&session, jobs).run(&tasks, &mut |event| {
            if let ScanEvent::Report(r) = event {
                reports.push(format!("{r:?}"));
            }
        });
        reports
    };

    let reference = run(true, false, 1);
    assert!(!reference.is_empty(), "the archive must produce reports");
    for (preprocess, fragment_instances, jobs) in [
        (false, false, 1),
        (true, true, 1),
        (true, false, 4),
        (false, false, 4),
        (true, true, 4),
    ] {
        assert_eq!(
            reference,
            run(preprocess, fragment_instances, jobs),
            "preprocess={preprocess} fragment_instances={fragment_instances} jobs={jobs}"
        );
    }
}

/// The unsat-side acceleration contract (core-cache memoization, hyper-
/// binary resolution, tiered clause DB): like preprocessing, these change
/// how an answer is produced — a memoized core short-circuits the search,
/// HBR binaries reshape propagation — but never the answer itself. The
/// report stream must be byte-identical across the full core-cache × HBR
/// × jobs matrix, compared against the everything-off sequential reference.
#[test]
fn core_cache_and_hbr_do_not_change_reports() {
    let archive_cfg = ArchiveConfig {
        packages: 6,
        seed: 0xC0DE,
        ..ArchiveConfig::default()
    };
    let files = generate_archive(&archive_cfg);
    let tasks: Vec<ScanTask> = files
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect();
    let run = |core_cache: bool, hbr: bool, jobs: usize| {
        let session = AnalysisSession::new(CheckerConfig {
            threads: Some(1),
            query_cache: false,
            core_cache,
            hbr,
            ..CheckerConfig::default()
        });
        let mut reports = Vec::new();
        ScanPipeline::new(&session, jobs).run(&tasks, &mut |event| {
            if let ScanEvent::Report(r) = event {
                reports.push(format!("{r:?}"));
            }
        });
        reports
    };

    let reference = run(false, false, 1);
    assert!(!reference.is_empty(), "the archive must produce reports");
    for (core_cache, hbr, jobs) in [
        (true, false, 1),
        (false, true, 1),
        (true, true, 1),
        (true, false, 4),
        (false, true, 4),
        (true, true, 4),
    ] {
        assert_eq!(
            reference,
            run(core_cache, hbr, jobs),
            "core_cache={core_cache} hbr={hbr} jobs={jobs}"
        );
    }
}

/// One archive pass through a session backed by the given cache file:
/// every report rendered in order, plus the session's aggregate stats.
fn archive_run(path: &std::path::Path) -> (Vec<String>, stack_repro::core::CheckStats) {
    let archive_cfg = ArchiveConfig {
        packages: 8,
        seed: 0xD15C,
        ..ArchiveConfig::default()
    };
    let store = Arc::new(DiskQueryStore::open(path).expect("open cache file"));
    let session = AnalysisSession::with_store(
        CheckerConfig {
            threads: Some(4),
            ..CheckerConfig::default()
        },
        store.clone() as _,
    );
    let mut reports = Vec::new();
    for file in generate_archive(&archive_cfg) {
        session
            .check_source_streaming(&file.source, &file.name, &mut |r| {
                reports.push(format!("{r:?}"));
            })
            .expect("archive files compile");
    }
    store.save().expect("save cache file");
    (reports, session.stats())
}

#[test]
fn warm_disk_store_run_matches_cold_run() {
    let path =
        std::env::temp_dir().join(format!("stack-determinism-warm-{}.qs", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (cold_reports, cold_stats) = archive_run(&path);
    assert!(
        !cold_reports.is_empty(),
        "the archive population must produce reports"
    );
    let (warm_reports, warm_stats) = archive_run(&path);

    // Byte-identical reports, in identical order: answering from the disk
    // store must be indistinguishable from recomputing.
    assert_eq!(cold_reports, warm_reports);
    assert_eq!(cold_stats.queries, warm_stats.queries);

    // The warm run answers at least 90% of its store lookups from disk —
    // here all of them, since every decided query of the cold run was
    // persisted and the archive produces no budget-exhausted queries.
    assert_eq!(warm_stats.cache_misses, 0, "{warm_stats:?}");
    assert!(
        warm_stats.cache_hit_rate() >= 0.9,
        "warm hit rate {} below the 90% bar ({warm_stats:?})",
        warm_stats.cache_hit_rate()
    );
    std::fs::remove_file(&path).unwrap();
}

/// One archive pass through the file-parallel scan pipeline, optionally
/// backed by a persisted scan store: the ordered event stream plus the
/// session's aggregate stats.
fn pipeline_run(
    files: &[stack_repro::corpus::ArchiveFile],
    jobs: usize,
    scan_store: Option<&std::path::Path>,
) -> (Vec<String>, stack_repro::core::CheckStats) {
    let tasks: Vec<ScanTask> = files
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect();
    let session = AnalysisSession::new(CheckerConfig {
        threads: Some(1),
        ..CheckerConfig::default()
    });
    let mut pipeline = ScanPipeline::new(&session, jobs);
    let store = scan_store.map(|p| Arc::new(ScanStore::open(p).expect("open scan store")));
    if let Some(store) = &store {
        pipeline = pipeline.with_scan_store(Arc::clone(store));
    }
    let mut events = Vec::new();
    pipeline.run(&tasks, &mut |event| {
        if let ScanEvent::Report(r) = event {
            events.push(format!("{r:?}"));
        }
    });
    if let Some(store) = &store {
        store.save().expect("save scan store");
    }
    (events, session.stats())
}

/// The incremental-rescan acceptance contract: a 0%-churn re-scan (only
/// comment/whitespace edits between runs) skips 100% of modules, issues no
/// solver queries, and produces a byte-identical report stream — at every
/// file-level parallelism width.
#[test]
fn zero_churn_rescan_skips_every_module_with_identical_output() {
    let archive_cfg = ArchiveConfig {
        packages: 8,
        seed: 0xF1D0,
        ..ArchiveConfig::default()
    };
    let base = generate_archive(&archive_cfg);
    let churned = churn_archive(&base, archive_cfg.seed, 0.0);
    assert_eq!(churned.semantic_edits, 0);
    assert!(
        churned.cosmetic_edits > 0,
        "cosmetic churn must be exercised"
    );

    let path = std::env::temp_dir().join(format!(
        "stack-determinism-rescan-{}.ss",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Cold: analyze the base archive, recording every module.
    let (cold_reports, cold_stats) = pipeline_run(&base, 4, Some(&path));
    assert!(!cold_reports.is_empty());
    assert_eq!(cold_stats.modules_skipped, 0);

    // Plain reference run over the *churned* copy (no store at all).
    let (reference_reports, _) = pipeline_run(&churned.files, 1, None);
    assert_eq!(
        cold_reports, reference_reports,
        "comment/whitespace edits must not change any report"
    );

    // Re-scan the churned copy against the recorded store.
    for jobs in [1, 4] {
        let (warm_reports, warm_stats) = pipeline_run(&churned.files, jobs, Some(&path));
        assert_eq!(cold_reports, warm_reports, "jobs={jobs}");
        assert_eq!(
            warm_stats.modules_skipped, warm_stats.modules,
            "every module must be skipped (jobs={jobs}): {warm_stats:?}"
        );
        assert_eq!(warm_stats.modules_skipped, base.len());
        assert_eq!(
            warm_stats.functions_skipped, cold_stats.functions,
            "every function must replay (jobs={jobs}): {warm_stats:?}"
        );
        assert_eq!(warm_stats.queries, 0, "jobs={jobs}: {warm_stats:?}");
        assert_eq!(warm_stats.functions, cold_stats.functions);
    }
    std::fs::remove_file(&path).unwrap();
}

/// The failure-containment contract: a module whose analysis panics
/// degrades to a `Failure` event in the ordered stream — and that stream,
/// reports and failures alike, is byte-identical at every file-level
/// parallelism width. (The panic is injected through the pipeline's own
/// fault hook, so the test models an analysis bug, not a corpus bug.)
#[test]
fn panicking_module_scan_is_deterministic_across_jobs_widths() {
    let archive_cfg = ArchiveConfig {
        packages: 6,
        seed: 0x9A71C,
        ..ArchiveConfig::default()
    };
    let files = generate_archive(&archive_cfg);
    let run = |jobs: usize| {
        let tasks: Vec<ScanTask> = files
            .iter()
            .map(|f| ScanTask {
                name: f.name.clone(),
                source: ScanSource::Inline(f.source.clone()),
            })
            .collect();
        let session = AnalysisSession::new(CheckerConfig {
            threads: Some(1),
            ..CheckerConfig::default()
        });
        // Panic while analyzing every file of package 3 (one fragment,
        // several matching modules, so containment is exercised more than
        // once per run).
        let pipeline = ScanPipeline::new(&session, jobs).with_injected_panic("archive-0003");
        let mut events = Vec::new();
        pipeline.run(&tasks, &mut |event| {
            events.push(match event {
                ScanEvent::Report(r) => format!("report {r:?}"),
                ScanEvent::Failure { name, error } => format!("failure {name}: {error}"),
            });
        });
        events
    };

    let sequential = run(1);
    let injected: Vec<&String> = sequential
        .iter()
        .filter(|e| e.contains("injected fault: panic while analyzing"))
        .collect();
    assert!(
        !injected.is_empty(),
        "the injected panic must surface as Failure events: {sequential:?}"
    );
    assert!(
        sequential.iter().any(|e| e.starts_with("report ")),
        "the unaffected modules must still report"
    );
    for jobs in [2, 4] {
        assert_eq!(sequential, run(jobs), "jobs={jobs}");
    }
}

/// The distributed-scan contract: scanning the archive as four disjoint
/// content-keyed shards, merging the per-shard scan stores, and re-scanning
/// the whole archive warm from the merged store must skip every module and
/// reproduce the unsharded cold run's report stream byte for byte — at
/// every file-level parallelism width.
#[test]
fn sharded_scan_with_merged_stores_matches_unsharded_run() {
    use stack_repro::core::{content_key, shard_assignment};

    const SHARDS: usize = 4;
    let archive_cfg = ArchiveConfig {
        packages: 8,
        seed: 0x5AD5,
        ..ArchiveConfig::default()
    };
    let base = generate_archive(&archive_cfg);

    // Unsharded cold reference, no store involved.
    let (reference_reports, reference_stats) = pipeline_run(&base, 1, None);
    assert!(!reference_reports.is_empty());

    // Fan-out: each shard scans only the files the content-keyed partition
    // assigns it, recording into its own scan store.
    let tag = format!("stack-determinism-shard-{}", std::process::id());
    let shard_path = |i: usize| std::env::temp_dir().join(format!("{tag}-{i}.ss"));
    let mut sharded_modules = 0;
    for shard in 0..SHARDS {
        let files: Vec<stack_repro::corpus::ArchiveFile> = base
            .iter()
            .filter(|f| shard_assignment(content_key(f.source.as_bytes()), SHARDS) == shard)
            .cloned()
            .collect();
        let path = shard_path(shard);
        let _ = std::fs::remove_file(&path);
        let (_, stats) = pipeline_run(&files, 4, Some(&path));
        assert_eq!(stats.modules, files.len());
        sharded_modules += stats.modules;
    }
    assert_eq!(
        sharded_modules,
        base.len(),
        "the shards must partition the archive exactly"
    );

    // Fan-in: one merged store, then full warm re-scans against it.
    let merged = std::env::temp_dir().join(format!("{tag}-merged.ss"));
    let inputs: Vec<std::path::PathBuf> = (0..SHARDS).map(shard_path).collect();
    let stats = ScanStore::merge(&merged, &inputs, None).expect("merge shard scan stores");
    // One record per *function* since the store keys on function replay
    // keys; generated function names are unique, so no two shards ever
    // record the same key.
    assert_eq!(stats.entries_out, reference_stats.functions as u64);
    assert_eq!(stats.duplicates, 0, "shards are disjoint");

    for jobs in [1, 4] {
        let (warm_reports, warm_stats) = pipeline_run(&base, jobs, Some(&merged));
        assert_eq!(reference_reports, warm_reports, "jobs={jobs}");
        assert_eq!(
            warm_stats.modules_skipped,
            base.len(),
            "every module must replay from the merged store (jobs={jobs}): {warm_stats:?}"
        );
        assert_eq!(warm_stats.functions_skipped, reference_stats.functions);
        assert_eq!(warm_stats.queries, 0, "jobs={jobs}: {warm_stats:?}");
        assert_eq!(warm_stats.functions, reference_stats.functions);
    }
    for path in inputs.into_iter().chain([merged]) {
        std::fs::remove_file(path).unwrap();
    }
}
