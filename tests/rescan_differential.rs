//! The churn differential-test harness: one reusable scan driver run
//! under every pipeline configuration — cold, warm function-granular,
//! warm module-granular, sharded + merged, budget-degraded, and
//! fault-injected — over randomized multi-step churn sequences, with the
//! report stream of each configuration asserted byte-equal to a fresh
//! storeless cold run of the same sources at every step.
//!
//! The generated archives emit exactly one function per source line, so
//! a line-wise diff of two versions of the population is an exact
//! per-function diff; every `functions_skipped` assertion below is
//! checked against that ground truth, not against the pipeline's own
//! bookkeeping. The cross-path dedup tests ride the same driver: a
//! population extended with byte-identical vendored copies must analyze
//! each unique source once, replay the copies under their own paths, and
//! merge duplicate-keyed shard records without conflict.

use proptest::prelude::*;
use stack_repro::core::{
    content_key, shard_assignment, AnalysisSession, CheckStats, CheckerConfig, ScanEvent,
    ScanPipeline, ScanSource, ScanStore, ScanTask,
};
use stack_repro::corpus::{
    churn_functions_count, duplicate_files, generate_archive, ArchiveConfig, ArchiveFile,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique temp path per call (tests in one binary run in parallel).
fn temp_path() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "stack-rescan-diff-{}-{}.ss",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One configuration of the differential driver. The default is the
/// reference configuration every other one is compared against: a cold,
/// storeless, sequential scan under the default checker config.
struct Scan<'a> {
    jobs: usize,
    store: Option<&'a Path>,
    /// Persist the (possibly updated) store after the run — how a churn
    /// round advances the recorded state to its edited population.
    save: bool,
    module_granular: bool,
    query_budget: u64,
    injected_panic: Option<&'a str>,
}

impl Default for Scan<'_> {
    fn default() -> Self {
        Scan {
            jobs: 1,
            store: None,
            save: false,
            module_granular: false,
            query_budget: CheckerConfig::default().query_budget,
            injected_panic: None,
        }
    }
}

/// Run one archive scan under `opts`: the ordered event stream (reports
/// and failures alike) plus the session's aggregate stats.
fn scan(files: &[ArchiveFile], opts: &Scan) -> (Vec<String>, CheckStats) {
    let tasks: Vec<ScanTask> = files
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect();
    let session = AnalysisSession::new(CheckerConfig {
        threads: Some(1),
        query_budget: opts.query_budget,
        ..CheckerConfig::default()
    });
    let mut pipeline = ScanPipeline::new(&session, opts.jobs);
    if opts.module_granular {
        pipeline = pipeline.with_module_granularity();
    }
    if let Some(fragment) = opts.injected_panic {
        pipeline = pipeline.with_injected_panic(fragment);
    }
    let store = opts
        .store
        .map(|p| Arc::new(ScanStore::open(p).expect("open scan store")));
    if let Some(store) = &store {
        pipeline = pipeline.with_scan_store(Arc::clone(store));
    }
    let mut events = Vec::new();
    pipeline.run(&tasks, &mut |event| {
        events.push(match event {
            ScanEvent::Report(r) => format!("report {r:?}"),
            ScanEvent::Failure { name, error } => format!("failure {name}: {error}"),
        });
    });
    if opts.save {
        store
            .as_ref()
            .expect("save requires a store")
            .save()
            .expect("save scan store");
    }
    (events, session.stats())
}

/// Per-file function-level diff between two versions of one population:
/// file name, its function count, and how many of its functions changed.
/// Exact because the generator emits one function per line.
struct FileDiff {
    name: String,
    functions: usize,
    edited: usize,
}

fn diff_files(prev: &[ArchiveFile], next: &[ArchiveFile]) -> Vec<FileDiff> {
    assert_eq!(prev.len(), next.len(), "churn never adds or removes files");
    prev.iter()
        .zip(next)
        .map(|(p, n)| {
            assert_eq!(p.name, n.name);
            let pl: Vec<&str> = p.source.lines().collect();
            let nl: Vec<&str> = n.source.lines().collect();
            assert_eq!(pl.len(), nl.len(), "churn never adds or removes lines");
            FileDiff {
                name: n.name.clone(),
                functions: nl.len(),
                edited: pl.iter().zip(&nl).filter(|(a, b)| a != b).count(),
            }
        })
        .collect()
}

fn total_functions(diffs: &[FileDiff]) -> usize {
    diffs.iter().map(|d| d.functions).sum()
}

fn edited_functions(diffs: &[FileDiff]) -> usize {
    diffs.iter().map(|d| d.edited).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Multi-step churn: N rounds of random in-place function edits, each
    /// followed by warm function-granular re-scans at jobs 1 and 4 and a
    /// warm module-granular re-scan — every one byte-identical to a fresh
    /// storeless cold scan of that round's sources, with `functions_skipped`
    /// exactly the line-diff ground truth (function-granular: everything
    /// but the edited functions; module-granular: only the functions of
    /// fully-unchanged files).
    #[test]
    fn multi_step_churn_rescan_matches_cold_at_every_round(
        seed in 1u64..1_000,
        rounds in 1usize..4,
        per_round in 1usize..4,
    ) {
        let cfg = ArchiveConfig {
            packages: 3,
            seed: 0xD1FF ^ seed,
            ..ArchiveConfig::default()
        };
        let store_path = temp_path();
        let mut current = generate_archive(&cfg);
        let (_, cold_stats) = scan(&current, &Scan {
            jobs: 4,
            store: Some(&store_path),
            save: true,
            ..Scan::default()
        });
        for round in 0..rounds as u64 {
            let churn = churn_functions_count(&current, seed.wrapping_add(round), per_round);
            let diffs = diff_files(&current, &churn.files);
            let total = total_functions(&diffs);
            let edited = edited_functions(&diffs);
            prop_assert_eq!(total, cold_stats.functions);
            // Re-editing a slot can coincide with its existing constant, so
            // the byte-level diff bounds the nominal edit count from below.
            prop_assert!(edited <= churn.edited_functions);

            let (reference, _) = scan(&churn.files, &Scan::default());
            for jobs in [1, 4] {
                let (events, stats) = scan(&churn.files, &Scan {
                    jobs,
                    store: Some(&store_path),
                    ..Scan::default()
                });
                prop_assert_eq!(&events, &reference, "round {} jobs {}", round, jobs);
                prop_assert_eq!(
                    stats.functions_skipped,
                    total - edited,
                    "exactly the unchanged functions replay (round {} jobs {}): {:?}",
                    round, jobs, stats
                );
            }
            let (module_events, module_stats) = scan(&churn.files, &Scan {
                jobs: 2,
                store: Some(&store_path),
                module_granular: true,
                ..Scan::default()
            });
            prop_assert_eq!(&module_events, &reference, "module-granular round {}", round);
            let unchanged_file_fns: usize = diffs
                .iter()
                .filter(|d| d.edited == 0)
                .map(|d| d.functions)
                .sum();
            prop_assert_eq!(
                module_stats.functions_skipped,
                unchanged_file_fns,
                "module granularity replays only fully-unchanged files: {:?}",
                module_stats
            );
            // Every check above ran against the prior round's store; only
            // now advance the recorded state to this round's population.
            let (_, _) = scan(&churn.files, &Scan {
                jobs: 2,
                store: Some(&store_path),
                save: true,
                ..Scan::default()
            });
            current = churn.files;
        }
        std::fs::remove_file(&store_path).unwrap();
    }
}

/// The full differential matrix over one churn step: sharded + merged,
/// budget-degraded, and fault-injected configurations against the same
/// line-diff ground truth. Deterministic (fixed seed) because the
/// sharded leg alone runs the population several times over.
#[test]
fn differential_matrix_covers_sharded_degraded_and_faulted_scans() {
    const SHARDS: usize = 2;
    let cfg = ArchiveConfig {
        packages: 4,
        seed: 0x5E9_0D1F,
        ..ArchiveConfig::default()
    };
    let base = generate_archive(&cfg);
    let store_path = temp_path();
    let (_, _) = scan(
        &base,
        &Scan {
            jobs: 4,
            store: Some(&store_path),
            save: true,
            ..Scan::default()
        },
    );
    let churn = churn_functions_count(&base, 0xBEEF, 2);
    let diffs = diff_files(&base, &churn.files);
    let total = total_functions(&diffs);
    let edited = edited_functions(&diffs);
    assert!(edited > 0, "the matrix needs real churn");
    let (reference, reference_stats) = scan(&churn.files, &Scan::default());
    assert!(!reference.is_empty());

    // Sharded + merged: each shard cold-scans its content-keyed partition
    // of the churned population into its own store; the merged store must
    // replay every function of a full warm re-scan byte-identically.
    let shard_paths: Vec<PathBuf> = (0..SHARDS).map(|_| temp_path()).collect();
    for (shard, path) in shard_paths.iter().enumerate() {
        let part: Vec<ArchiveFile> = churn
            .files
            .iter()
            .filter(|f| shard_assignment(content_key(f.source.as_bytes()), SHARDS) == shard)
            .cloned()
            .collect();
        assert!(!part.is_empty(), "shard {shard} must draw files");
        let (_, stats) = scan(
            &part,
            &Scan {
                jobs: 2,
                store: Some(path),
                save: true,
                ..Scan::default()
            },
        );
        assert_eq!(stats.modules, part.len());
    }
    let merged = temp_path();
    let merge_stats =
        ScanStore::merge(&merged, &shard_paths, None).expect("merge shard scan stores");
    assert_eq!(merge_stats.entries_out, total as u64);
    for jobs in [1, 4] {
        let (events, stats) = scan(
            &churn.files,
            &Scan {
                jobs,
                store: Some(&merged),
                ..Scan::default()
            },
        );
        assert_eq!(events, reference, "merged warm scan (jobs {jobs})");
        assert_eq!(stats.functions_skipped, total, "full replay (jobs {jobs})");
        assert_eq!(stats.queries, 0, "jobs {jobs}");
    }

    // Budget-degraded: a tiny per-query budget is part of the replay key,
    // so the default-budget store must serve it nothing — and the scan
    // must still be byte-deterministic across jobs widths.
    let tiny = 50;
    let (degraded_reference, _) = scan(
        &churn.files,
        &Scan {
            query_budget: tiny,
            ..Scan::default()
        },
    );
    for jobs in [1, 4] {
        let (events, stats) = scan(
            &churn.files,
            &Scan {
                jobs,
                store: Some(&store_path),
                query_budget: tiny,
                ..Scan::default()
            },
        );
        assert_eq!(events, degraded_reference, "degraded scan (jobs {jobs})");
        assert_eq!(
            stats.functions_skipped, 0,
            "a different budget must never replay another budget's records"
        );
    }

    // Fault-injected: a panicking module recomputes nothing and replays
    // nothing (the fault fires before the store lookup); everything else
    // replays. The stream matches a storeless run with the same fault.
    let fragment = "archive-0002";
    let panicking_fns: usize = diffs
        .iter()
        .filter(|d| d.name.contains(fragment))
        .map(|d| d.functions)
        .sum();
    assert!(panicking_fns > 0, "the fault fragment must match files");
    let edited_outside_panic: usize = diffs
        .iter()
        .filter(|d| !d.name.contains(fragment))
        .map(|d| d.edited)
        .sum();
    let (fault_reference, _) = scan(
        &churn.files,
        &Scan {
            injected_panic: Some(fragment),
            ..Scan::default()
        },
    );
    assert!(fault_reference
        .iter()
        .any(|e| e.contains("injected fault: panic while analyzing")));
    for jobs in [1, 4] {
        let (events, stats) = scan(
            &churn.files,
            &Scan {
                jobs,
                store: Some(&store_path),
                injected_panic: Some(fragment),
                ..Scan::default()
            },
        );
        assert_eq!(events, fault_reference, "faulted scan (jobs {jobs})");
        assert_eq!(
            stats.functions_skipped,
            total - panicking_fns - edited_outside_panic,
            "replays skip the faulted module and the edited functions: {stats:?}"
        );
    }
    assert_eq!(reference_stats.functions, total);
    for path in shard_paths.into_iter().chain([merged, store_path]) {
        std::fs::remove_file(path).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cross-path dedup: extending the population with byte-identical
    /// vendored copies must cost zero extra solver queries on a fresh
    /// store at jobs 1 (each unique source analyzes once, its copies
    /// replay under their own paths), record one entry per unique
    /// function, and stream reports that carry the vendored paths —
    /// byte-identical to a storeless run that analyzes every copy.
    #[test]
    fn duplicate_paths_replay_from_one_analysis(copies in 1usize..5, seed in 1u64..1_000) {
        let cfg = ArchiveConfig {
            packages: 2,
            seed: 0xDED0 ^ seed,
            ..ArchiveConfig::default()
        };
        let base = generate_archive(&cfg);
        let dup = duplicate_files(&base, seed, copies);
        prop_assert_eq!(dup.len(), base.len() + copies);

        let (reference, reference_stats) = scan(&dup, &Scan::default());
        prop_assert!(
            reference.iter().any(|e| e.contains("vendor")),
            "the vendored copies must report under their own paths: {:?}",
            reference
        );
        let (_, base_stats) = scan(&base, &Scan::default());

        let store_path = temp_path();
        let (events, stats) = scan(&dup, &Scan {
            store: Some(&store_path),
            save: true,
            ..Scan::default()
        });
        prop_assert_eq!(&events, &reference);
        prop_assert_eq!(
            stats.queries,
            base_stats.queries,
            "the vendored copies must cost zero extra queries"
        );
        let unique_fns = base_stats.functions;
        prop_assert_eq!(
            stats.functions_skipped,
            reference_stats.functions - unique_fns,
            "every duplicated function replays"
        );
        let store = ScanStore::open(&store_path).unwrap();
        prop_assert_eq!(store.loaded_entries(), unique_fns as u64, "one record per unique function");
        std::fs::remove_file(&store_path).unwrap();
    }
}

/// Cross-path dedup under sharding: originals and their vendored copies
/// recorded by *different* shards produce duplicate-keyed, byte-identical
/// (path-normalized) records — the merge unions them without conflict,
/// and a full warm re-scan replays every copy from the shared record.
/// (A content-keyed `--shard i/n` partition places identical sources in
/// one shard; splitting originals from copies exercises the harder
/// cross-shard collision the normalization exists for.)
#[test]
fn duplicated_files_across_shards_merge_and_replay() {
    let cfg = ArchiveConfig {
        packages: 2,
        seed: 0xD0_5EED,
        ..ArchiveConfig::default()
    };
    let base = generate_archive(&cfg);
    let copies = base.len();
    let dup = duplicate_files(&base, cfg.seed, copies);
    let (reference, reference_stats) = scan(&dup, &Scan::default());

    // Shard 0: the originals. Shard 1: the vendored copies.
    let shard_a = temp_path();
    let shard_b = temp_path();
    let (originals, vendored): (Vec<ArchiveFile>, Vec<ArchiveFile>) = dup
        .clone()
        .into_iter()
        .partition(|f| !f.package.starts_with("vendor"));
    assert_eq!(vendored.len(), copies);
    for (part, path) in [(&originals, &shard_a), (&vendored, &shard_b)] {
        let (_, stats) = scan(
            part,
            &Scan {
                jobs: 2,
                store: Some(path),
                save: true,
                ..Scan::default()
            },
        );
        assert_eq!(stats.modules, part.len());
    }

    let merged = temp_path();
    let stats = ScanStore::merge(&merged, &[shard_a.clone(), shard_b.clone()], None)
        .expect("duplicate-keyed shard records must merge without conflict");
    assert!(
        stats.duplicates > 0,
        "the vendored shard must collide with the originals: {stats:?}"
    );
    let unique_fns: u64 = (reference_stats.functions - vendored.len() * 5) as u64;
    assert_eq!(stats.entries_out, unique_fns);

    for jobs in [1, 4] {
        let (events, warm_stats) = scan(
            &dup,
            &Scan {
                jobs,
                store: Some(&merged),
                ..Scan::default()
            },
        );
        assert_eq!(events, reference, "merged warm scan (jobs {jobs})");
        assert_eq!(warm_stats.functions_skipped, reference_stats.functions);
        assert_eq!(warm_stats.queries, 0, "jobs {jobs}");
    }
    for path in [shard_a, shard_b, merged] {
        std::fs::remove_file(path).unwrap();
    }
}
