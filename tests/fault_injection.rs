//! Fault-injection properties of the two persistence layers: a saved
//! query store or scan store subjected to truncation at an arbitrary
//! offset, a torn in-place overwrite splicing two generations, or a
//! flipped bit must (a) open without panicking, (b) never serve a wrong
//! or duplicate entry — a warm scan against the damaged file streams the
//! same reports as a store-less reference run — and (c) heal on the next
//! save: re-opening the healed file reports a clean store holding every
//! salvaged entry. The scan store is keyed per function, so "never a
//! wrong or duplicate entry" means every surviving function record
//! replays (the warm scan's `functions_skipped` equals exactly the
//! salvaged record count) and every lost one recomputes. Budget
//! degradation rides the same harness: a scan under an arbitrary tiny
//! query budget must stream identical events at every file-parallelism
//! width and never persist a budget-degraded function.

use proptest::prelude::*;
use stack_repro::core::faultinject::{flip_bit, torn_write, truncate_at};
use stack_repro::core::{
    AnalysisSession, CheckStats, CheckerConfig, ScanEvent, ScanPipeline, ScanSource, ScanStore,
    ScanTask,
};
use stack_repro::corpus::{generate_archive, ArchiveConfig};
use stack_repro::solver::DiskQueryStore;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

fn archive_cfg() -> ArchiveConfig {
    ArchiveConfig {
        packages: 4,
        seed: 0xFA_117,
        ..ArchiveConfig::default()
    }
}

fn tasks() -> Vec<ScanTask> {
    generate_archive(&archive_cfg())
        .iter()
        .map(|f| ScanTask {
            name: f.name.clone(),
            source: ScanSource::Inline(f.source.clone()),
        })
        .collect()
}

/// A unique temp path per call (tests in one binary run in parallel).
fn temp_path(ext: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "stack-faultinj-{}-{}.{ext}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One archive scan with optional disk-backed query store and scan store;
/// returns the rendered event stream and the session's aggregate stats.
fn scan(
    jobs: usize,
    query_budget: u64,
    query_store: Option<&Path>,
    scan_store: Option<&Path>,
) -> (Vec<String>, CheckStats) {
    let config = CheckerConfig {
        query_budget,
        threads: Some(1),
        ..CheckerConfig::default()
    };
    let disk = query_store.map(|p| Arc::new(DiskQueryStore::open(p).expect("open query store")));
    let session = match &disk {
        Some(store) => AnalysisSession::with_store(config, Arc::clone(store) as _),
        None => AnalysisSession::new(config),
    };
    let mut pipeline = ScanPipeline::new(&session, jobs);
    let store = scan_store.map(|p| Arc::new(ScanStore::open(p).expect("open scan store")));
    if let Some(store) = &store {
        pipeline = pipeline.with_scan_store(Arc::clone(store));
    }
    let mut events = Vec::new();
    pipeline.run(&tasks(), &mut |event| {
        events.push(match event {
            ScanEvent::Report(r) => format!("report {r:?}"),
            ScanEvent::Failure { name, error } => format!("failure {name}: {error}"),
        });
    });
    if let Some(store) = &disk {
        store.save().expect("save query store");
    }
    if let Some(store) = &store {
        store.save().expect("save scan store");
    }
    (events, session.stats())
}

/// Two saved generations of each store over the same archive, plus the
/// reference event stream and the entry counts a clean store holds.
struct Fixture {
    reference: Vec<String>,
    query_gen1: Vec<u8>,
    query_gen2: Vec<u8>,
    query_entries: u64,
    scan_gen1: Vec<u8>,
    scan_gen2: Vec<u8>,
    scan_entries: u64,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let qs = temp_path("qs");
        let ss = temp_path("ss");
        let budget = CheckerConfig::default().query_budget;
        let (reference, _) = scan(4, budget, Some(&qs), Some(&ss));
        let query_gen1 = std::fs::read(&qs).expect("read saved query store");
        let scan_gen1 = std::fs::read(&ss).expect("read saved scan store");
        // A second warm run re-saves both stores under the next generation:
        // same entries, different stamp bytes — the two versions a torn
        // in-place overwrite can splice.
        let (warm, _) = scan(4, budget, Some(&qs), Some(&ss));
        assert_eq!(reference, warm, "warm fixture run must match cold");
        let query_gen2 = std::fs::read(&qs).expect("read re-saved query store");
        let scan_gen2 = std::fs::read(&ss).expect("read re-saved scan store");
        let query_entries = DiskQueryStore::open(&qs).unwrap().loaded_entries();
        let scan_entries = ScanStore::open(&ss).unwrap().loaded_entries();
        let _ = std::fs::remove_file(&qs);
        let _ = std::fs::remove_file(&ss);
        assert!(query_entries > 0 && scan_entries > 0);
        Fixture {
            reference,
            query_gen1,
            query_gen2,
            query_entries,
            scan_gen1,
            scan_gen2,
            scan_entries,
        }
    })
}

/// Apply one modeled fault to the two saved generations of a store file.
fn corrupt(kind: usize, gen1: &[u8], gen2: &[u8], pos: usize, bit: u32) -> Vec<u8> {
    match kind {
        0 => truncate_at(gen2, pos % (gen2.len() + 1)),
        1 => torn_write(gen2, gen1, pos % (gen2.len() + 1)),
        _ => flip_bit(gen2, pos % gen2.len(), bit),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Query store: any truncation, torn write, or bit flip salvages or
    /// cleanly restarts; a warm scan against the damaged file streams the
    /// reference reports; the next save heals the file.
    #[test]
    fn corrupted_query_store_salvages_and_heals(
        kind in 0usize..3,
        pos in any::<usize>(),
        bit in 0u32..8,
    ) {
        let fx = fixture();
        let path = temp_path("qs");
        let damaged = corrupt(kind, &fx.query_gen1, &fx.query_gen2, pos, bit);
        std::fs::write(&path, damaged).unwrap();

        let store = DiskQueryStore::open(&path).expect("corrupted open must not error");
        let loaded = store.loaded_entries();
        prop_assert!(loaded <= fx.query_entries, "no duplicate or phantom entries");
        if store.was_invalidated() {
            prop_assert_eq!(loaded, 0, "an invalidated store restarts empty");
        }
        if let Some(salvage) = store.salvage() {
            prop_assert!(salvage.dropped_lines > 0);
            prop_assert_eq!(salvage.salvaged_entries, loaded);
        }
        // Never a wrong answer: warm-scanning against the damaged store
        // reproduces the reference stream byte for byte.
        let (events, _) = scan(2, CheckerConfig::default().query_budget, Some(&path), None);
        prop_assert_eq!(&events, &fx.reference);

        // Self-healing: save rewrites the file canonically.
        store.save().expect("healing save");
        let healed = DiskQueryStore::open(&path).expect("healed open");
        prop_assert!(!healed.was_invalidated());
        prop_assert!(healed.salvage().is_none(), "healed store must be clean");
        prop_assert_eq!(healed.loaded_entries(), loaded);
        std::fs::remove_file(&path).unwrap();
    }

    /// Scan store: the same contract at the function-record layer.
    #[test]
    fn corrupted_scan_store_salvages_and_heals(
        kind in 0usize..3,
        pos in any::<usize>(),
        bit in 0u32..8,
    ) {
        let fx = fixture();
        let path = temp_path("ss");
        let damaged = corrupt(kind, &fx.scan_gen1, &fx.scan_gen2, pos, bit);
        std::fs::write(&path, damaged).unwrap();

        let store = ScanStore::open(&path).expect("corrupted open must not error");
        let loaded = store.loaded_entries();
        prop_assert!(loaded <= fx.scan_entries, "no duplicate or phantom records");
        if store.was_invalidated() {
            prop_assert_eq!(loaded, 0, "an invalidated store restarts empty");
        }
        if let Some(salvage) = store.salvage() {
            prop_assert!(salvage.dropped_lines > 0);
            prop_assert_eq!(salvage.salvaged_entries, loaded);
        }
        // Surviving function records replay and missing ones recompute —
        // either way the stream matches the reference run, and the replay
        // count is exactly the salvaged record count (never a phantom or
        // wrong-function replay).
        let (events, stats) = scan(2, CheckerConfig::default().query_budget, None, Some(&path));
        prop_assert_eq!(&events, &fx.reference);
        prop_assert_eq!(stats.functions_skipped as u64, loaded);

        store.save().expect("healing save");
        let healed = ScanStore::open(&path).expect("healed open");
        prop_assert!(!healed.was_invalidated());
        prop_assert!(healed.salvage().is_none(), "healed store must be clean");
        prop_assert_eq!(healed.loaded_entries(), loaded);
        std::fs::remove_file(&path).unwrap();
    }
}

/// A store that needed salvage must never merge: the distributed fan-in
/// refuses it with an error naming the salvage (a merge must not bake a
/// shard's data loss into a fleet-shared artifact), while the same store
/// healed by a canonical re-save — what `store fsck --repair` runs —
/// merges fine. A header-damaged input is rejected as incompatible
/// outright.
#[test]
fn salvaged_store_never_merges() {
    use stack_repro::solver::MergeError;
    let fx = fixture();
    let clean_a = temp_path("ss");
    let clean_b = temp_path("ss");
    std::fs::write(&clean_a, &fx.scan_gen2).unwrap();
    std::fs::write(&clean_b, &fx.scan_gen2).unwrap();
    let out = temp_path("ss");
    let stats =
        ScanStore::merge(&out, &[clean_a.clone(), clean_b.clone()], None).expect("clean merge");
    assert_eq!(stats.entries_out, fx.scan_entries);

    // Damage one body line of an otherwise-valid store: open() salvages
    // around it, merge() refuses until the store is healed.
    let text = String::from_utf8(fx.scan_gen2.clone()).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(lines.len() > 1, "fixture store must have body lines");
    let last = lines.len() - 1;
    lines[last].push('x');
    let hurt = temp_path("ss");
    std::fs::write(&hurt, lines.join("\n") + "\n").unwrap();
    let store = ScanStore::open(&hurt).expect("salvaging open");
    assert!(
        store.salvage().is_some(),
        "a damaged body line must need salvage"
    );
    match ScanStore::merge(&out, &[clean_a.clone(), hurt.clone()], None) {
        Err(MergeError::Incompatible { reason, .. }) => {
            assert!(
                reason.contains("salvage"),
                "refusal must name the salvage: {reason}"
            );
        }
        other => panic!("merge of a salvage-needed store must fail, got {other:?}"),
    }
    store.save().expect("healing save");
    let stats =
        ScanStore::merge(&out, &[clean_a.clone(), hurt.clone()], None).expect("healed merge");
    assert_eq!(stats.entries_out, fx.scan_entries);

    let bad_header = text.replacen("stack-scan-store", "stack-scan-stale", 1);
    std::fs::write(&hurt, bad_header).unwrap();
    match ScanStore::merge(&out, &[clean_a.clone(), hurt.clone()], None) {
        Err(MergeError::Incompatible { .. }) => {}
        other => panic!("a header-damaged store must be incompatible, got {other:?}"),
    }
    for path in [clean_a, clean_b, hurt, out] {
        let _ = std::fs::remove_file(path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Budget degradation is deterministic and never persisted: for an
    /// arbitrary tiny budget, jobs-1 and jobs-4 scans stream identical
    /// events with identical degraded-query counts, and the scan store
    /// records only functions whose own checks stayed within budget. A
    /// warm re-scan under the same budget then replays exactly the
    /// persisted functions, recomputes the degraded ones (the per-query
    /// budget resets every solve call, so they degrade identically), and
    /// streams the same events again.
    #[test]
    fn degraded_scans_are_deterministic_and_never_persisted(budget in 20u64..200) {
        let run = |jobs: usize| {
            let path = temp_path("ss");
            let (events, stats) = scan(jobs, budget, None, Some(&path));
            let persisted = ScanStore::open(&path).unwrap().loaded_entries();
            (events, stats, persisted, path)
        };
        let (events1, stats1, persisted1, path1) = run(1);
        let (events4, stats4, persisted4, path4) = run(4);
        prop_assert_eq!(&events1, &events4, "degraded runs must be byte-deterministic");
        prop_assert_eq!(stats1.timeouts, stats4.timeouts);
        prop_assert_eq!(stats1.degraded_modules, stats4.degraded_modules);
        prop_assert_eq!(persisted1, persisted4);
        prop_assert!(persisted1 <= stats1.functions as u64);
        if stats1.timeouts > 0 {
            prop_assert!(
                persisted1 < stats1.functions as u64,
                "a budget-degraded function must never reach the scan store"
            );
        } else {
            prop_assert_eq!(persisted1, stats1.functions as u64);
        }
        // Warm re-scan against the degraded-run store, same budget: the
        // persisted (within-budget) functions replay, the rest recompute
        // and degrade the same way.
        let (warm_events, warm_stats) = scan(2, budget, None, Some(&path1));
        prop_assert_eq!(&warm_events, &events1);
        prop_assert_eq!(warm_stats.functions_skipped as u64, persisted1);
        std::fs::remove_file(&path1).unwrap();
        std::fs::remove_file(&path4).unwrap();
    }
}
